"""Benchmark: the asyncio micro-batched mechanism-serving pipeline.

PR 7 adds ``repro serve`` (:mod:`repro.serving`): compiled artifacts are
loaded (and verified) once at startup, concurrent ``POST /publish``
requests park on futures while a :class:`repro.serving.batching.MicroBatcher`
coalesces them, and each flush executes mixed ``n``/``alpha``
deployments as **one** fused
:class:`repro.sampling.alias.HeterogeneousAliasSampler` gather — with
per-user :class:`repro.release.ledger.ConcurrentPrivacyLedger`
accounting charged atomically before every draw and an online audit
hook replaying a sampled slice of responses against the independently
re-derived geometric law.

Measured here (in-process transport, so the number is the serving
pipeline itself — batcher, ledger, fused gather, audit hook — not TCP):

* ``served_qps`` — end-to-end requests/sec with micro-batching, at
  10k-1M simulated users, with p50/p99 request latency;
* ``unbatched_qps`` — the same load with ``batch_window=0`` (every
  query is its own gather), the baseline micro-batching is measured
  against;
* ``http_round_trips_per_second`` — a small keep-alive HTTP/1.1 smoke
  over a real socket.

Correctness is asserted in every mode (``--quick`` included):

* every response is drawn zero-solve from a load-time-verified
  artifact (the store's compile counter is frozen while serving);
* concurrent racers sharing one user never overspend the budget floor:
  with ``floor = alpha^K`` exactly ``K`` of their requests get 200 and
  the rest get 429, no matter the interleaving;
* the online auditor flags an injected tampered kernel (spec claims
  ``alpha=1/2``, kernel actually serves ``alpha=7/8``) while leaving
  the honest deployments unflagged.

Standalone: ``PYTHONPATH=src:benchmarks python benchmarks/bench_serving.py``
(``--quick`` for a CI smoke run; ``--check`` enforces the throughput
floor — **>= 1e4 batched requests/sec** — in quick mode too, plus all
of the assertions above). Emits a ``BENCH {json}`` line and writes
``benchmarks/out/BENCH_serving.json``.
"""

import argparse
import asyncio
import itertools
import sys
import tempfile
import time
from fractions import Fraction

import numpy as np

from _report import emit, emit_bench

from repro.release.artifacts import (
    ArtifactSpec,
    ArtifactStore,
    MechanismArtifact,
    compile_artifact,
)
from repro.serving import HTTPServingClient, InProcessClient, MechanismServer

#: Acceptance floor (enforced by ``--check`` even in quick mode): the
#: micro-batched in-process serving path must sustain this request rate.
SERVED_QPS_FLOOR = 1e4

#: The deployment mix every load run cycles through (mixed n and alpha,
#: so each flush exercises the fused heterogeneous gather).
DEPLOYMENTS = [
    (8, Fraction(1, 2)),
    (40, Fraction(1, 4)),
    (100, Fraction(2, 3)),
]


def build_store(path) -> ArtifactStore:
    store = ArtifactStore(path)
    for n, alpha in DEPLOYMENTS:
        store.get_or_compile(ArtifactSpec("geometric", n, alpha))
    return store


async def drive(server, *, requests, users, concurrency):
    """Drive ``requests`` publishes through ``concurrency`` workers.

    Returns wall seconds, per-request latencies, and status counts.
    """
    client = InProcessClient(server)
    latencies = np.zeros(requests)
    statuses: dict[int, int] = {}
    counter = itertools.count()
    mix = [(n, str(alpha), n // 2) for n, alpha in DEPLOYMENTS]

    async def worker():
        while True:
            i = next(counter)
            if i >= requests:
                return
            n, alpha, row = mix[i % len(mix)]
            begin = time.perf_counter()
            status, _ = await client.publish(
                user=f"u{i % users}", n=n, alpha=alpha, true_result=row
            )
            latencies[i] = time.perf_counter() - begin
            statuses[status] = statuses.get(status, 0) + 1

    start = time.perf_counter()
    await asyncio.gather(*[worker() for _ in range(concurrency)])
    wall = time.perf_counter() - start
    return wall, latencies, statuses


def bench_load(store, *, requests, users, concurrency, window):
    """One load run; asserts the zero-solve and all-200 invariants."""
    server = MechanismServer(
        store,
        batch_window=window,
        audit_rate=0.02,
        audit_every=64,
        seed=23,
        audit_seed=29,
    )
    server.load_store()
    assert all(d.verification.ok for d in server.deployments)
    compiles_before = store.stats["compiles"]
    wall, latencies, statuses = asyncio.run(
        drive(server, requests=requests, users=users, concurrency=concurrency)
    )
    assert store.stats["compiles"] == compiles_before, (
        "the request path must never compile (zero-solve serving)"
    )
    assert statuses == {200: requests}, f"unexpected statuses: {statuses}"
    assert server.metrics["published"] == requests
    stats = server.batcher.stats
    return {
        "requests": requests,
        "simulated_users": users,
        "concurrency": concurrency,
        "batch_window_seconds": window,
        "wall_seconds": wall,
        "qps": requests / wall,
        "latency_p50_ms": float(np.percentile(latencies, 50)) * 1e3,
        "latency_p99_ms": float(np.percentile(latencies, 99)) * 1e3,
        "batches": stats["batches"],
        "mean_batch": stats["queries"] / max(stats["batches"], 1),
        "max_batch": stats["max_batch"],
        "audited_responses": server.metrics["audit_recorded"],
    }


def check_ledger_floor(store):
    """Concurrent racers on one user admit exactly K = log_alpha(floor)."""
    K = 8
    alpha = Fraction(1, 2)
    server = MechanismServer(
        store, floor=alpha**K, batch_window=0.001, audit_rate=0.0, seed=31
    )
    server.load_store()
    client = InProcessClient(server)

    async def go():
        return await asyncio.gather(*[
            client.publish(user="racer", n=8, alpha="1/2", true_result=4)
            for _ in range(5 * K)
        ])

    results = asyncio.run(go())
    granted = sum(1 for status, _ in results if status == 200)
    rejected = sum(1 for status, _ in results if status == 429)
    assert granted == K, (
        f"floor alpha^{K} must admit exactly {K} concurrent releases, "
        f"admitted {granted}"
    )
    assert rejected == 5 * K - K
    ledger = server.ledger("racer")
    assert ledger.cumulative_alpha == alpha**K >= ledger.floor
    return {
        "floor": str(alpha**K),
        "racers": 5 * K,
        "granted": granted,
        "rejected": rejected,
        "cumulative_alpha": str(ledger.cumulative_alpha),
        "overspent": False,
    }


def check_audit_catches_tamper(store, *, requests):
    """The online audit flags a kernel tampered after verification."""
    server = MechanismServer(
        store,
        batch_window=0.001,
        audit_rate=1.0,
        audit_every=8,
        seed=37,
        audit_seed=41,
    )
    server.load_store()
    # Forge a deployment whose spec claims alpha=1/2 while its kernel
    # actually serves alpha=7/8 noise. Load-time verification would
    # refuse it (that refusal is exercised in the test suite), so it is
    # injected through the explicit verify=False port: the online audit
    # is the layer that must catch what load verification never saw.
    honest = compile_artifact("geometric", 6, Fraction(7, 8))
    forged_spec = ArtifactSpec("geometric", 6, Fraction(1, 2))
    forged = MechanismArtifact(
        forged_spec, honest.kernel, sampler=honest.sampler
    )
    server.load_artifact(forged, verify=False)
    client = InProcessClient(server)
    rng = np.random.default_rng(43)
    rows = rng.integers(0, 7, size=requests)

    async def go():
        for start in range(0, requests, 512):
            chunk = rows[start:start + 512]
            await asyncio.gather(*[
                client.publish(
                    user=f"t{start + j}", n=6, alpha="1/2",
                    true_result=int(row),
                )
                for j, row in enumerate(chunk)
            ])

    asyncio.run(go())
    findings = server.audit()
    by_key = {f.key: f for f in findings}
    tampered = by_key[forged_spec.key()]
    assert tampered.flagged, (
        "online audit failed to flag the tampered kernel "
        f"(chi2={tampered.statistic:.1f} vs limit {tampered.limit:.1f})"
    )
    honest_flagged = [
        f for f in findings if f.flagged and f.key != forged_spec.key()
    ]
    assert not honest_flagged, (
        f"audit false-flagged honest deployments: {honest_flagged}"
    )
    return {
        "requests": requests,
        "tampered_chi_square": tampered.statistic,
        "limit": tampered.limit,
        "tampered_flagged": True,
        "honest_false_flags": 0,
    }


def bench_http_smoke(store, *, requests):
    """Keep-alive HTTP/1.1 round-trips over a real socket."""
    server = MechanismServer(
        store, batch_window=0.0005, audit_rate=0.0, seed=47
    )
    server.load_store()

    async def go():
        await server.start(port=0)
        client = HTTPServingClient("127.0.0.1", server.port)
        try:
            start = time.perf_counter()
            for i in range(requests):
                status, _ = await client.publish(
                    user=f"h{i}", n=8, alpha="1/2", true_result=3
                )
                assert status == 200
            wall = time.perf_counter() - start
            status, health = await client.get("/healthz")
            assert status == 200 and health["status"] == "ok"
        finally:
            await client.close()
            await server.stop()
        return wall

    wall = asyncio.run(go())
    return {
        "requests": requests,
        "wall_seconds": wall,
        "http_round_trips_per_second": requests / wall,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small load for a CI smoke run"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when the batched serving floor "
        "(>= 1e4 requests/sec) is missed — enforced in quick mode too",
    )
    args = parser.parse_args(argv)

    if args.quick:
        scales = [(10_000, 30_000)]
        concurrency, http_requests, audit_requests = 1024, 300, 4096
    else:
        scales = [(10_000, 60_000), (100_000, 120_000), (1_000_000, 240_000)]
        concurrency, http_requests, audit_requests = 2048, 2000, 16_384

    with tempfile.TemporaryDirectory(prefix="bench-serving-") as tmp:
        store = build_store(tmp)
        batched = [
            bench_load(
                store,
                requests=requests,
                users=users,
                concurrency=concurrency,
                window=0.001,
            )
            for users, requests in scales
        ]
        unbatched = bench_load(
            store,
            requests=scales[0][1],
            users=scales[0][0],
            concurrency=concurrency,
            window=0.0,
        )
        ledger = check_ledger_floor(store)
        audit = check_audit_catches_tamper(store, requests=audit_requests)
        http = bench_http_smoke(store, requests=http_requests)

    results = {
        "quick": args.quick,
        "deployments": [
            {"n": n, "alpha": str(alpha)} for n, alpha in DEPLOYMENTS
        ],
        "batched": batched,
        "unbatched": unbatched,
        "ledger_concurrency": ledger,
        "audit_tamper": audit,
        "http_smoke": http,
        "targets": {"served_qps": SERVED_QPS_FLOOR},
    }

    lines = ["micro-batched mechanism serving (in-process pipeline):"]
    for row in batched:
        lines.append(
            "  users={simulated_users:>9,} requests={requests:>7,}: "
            "{qps:10.0f} req/s  p50={latency_p50_ms:6.2f}ms "
            "p99={latency_p99_ms:6.2f}ms  mean batch={mean_batch:7.1f}"
            .format(**row)
        )
    lines.append(
        "  unbatched baseline (window=0):       {qps:10.0f} req/s  "
        "p50={latency_p50_ms:6.2f}ms p99={latency_p99_ms:6.2f}ms".format(
            **unbatched
        )
    )
    lines.append(
        "  batched vs unbatched: {ratio:.1f}x".format(
            ratio=batched[0]["qps"] / unbatched["qps"]
        )
    )
    lines.append(
        "  ledger: floor={floor} admitted exactly {granted} of {racers} "
        "racers (asserted, never overspent)".format(**ledger)
    )
    lines.append(
        "  audit: tampered kernel chi2={tampered_chi_square:.0f} vs "
        "limit {limit:.0f} -> flagged; 0 honest false flags "
        "(asserted)".format(**audit)
    )
    lines.append(
        "  http/1.1 keep-alive smoke: "
        "{http_round_trips_per_second:.0f} round-trips/s".format(**http)
    )
    emit("serving", "\n".join(lines))
    emit_bench("serving", results)

    if args.check:
        failures = [
            f"batched qps at {row['simulated_users']} users: "
            f"{row['qps']:.0f}/s < {SERVED_QPS_FLOOR:.0e}/s"
            for row in batched
            if row["qps"] < SERVED_QPS_FLOOR
        ]
        if failures:
            print("serving targets missed: " + "; ".join(failures))
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
