"""Benchmark: vectorized fast paths vs the loop-based references.

Tracks the perf trajectory of the mechanism pipeline's fast paths:

* float ``geometric_matrix`` built by numpy broadcasting vs the
  O(n^2)-Python-ops loop construction (target: >= 20x at n=512);
* ``worst_case_loss`` with the cached loss table and vectorized row sums
  vs the old rebuild-the-table-per-row evaluation (target: >= 10x at
  n=256);
* ``Publisher.publish_batch`` (one vectorized noise draw for the whole
  batch) vs a sequential ``publish`` loop over 10k queries;
* fraction-free (Bareiss) exact ``inverse`` vs naive Fraction
  Gauss-Jordan;

and re-asserts that the exact (Fraction) outputs are bit-identical to
the loop constructions.

Standalone: ``PYTHONPATH=src python benchmarks/bench_fastpath.py``
(add ``--quick`` for a CI smoke run, ``--check`` to fail when full-mode
targets are missed). Emits a ``BENCH {json}`` line for dashboards and
archives a human-readable report under ``benchmarks/out/``.
"""

import argparse
import sys
import time
from fractions import Fraction

import numpy as np

from _report import emit, emit_bench

from repro.core.geometric import (
    GeometricMechanism,
    _geometric_matrix_loops,
    geometric_matrix,
)
from repro.db.generators import flu_population, flu_query
from repro.linalg.rational import RationalMatrix
from repro.linalg.toeplitz import kms_matrix
from repro.losses import AbsoluteLoss
from repro.losses.base import loss_matrix
from repro.release.publisher import Publisher


def best_of(fn, repeats=3):
    """Minimum wall time of ``repeats`` runs (steady-state timing)."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def reference_worst_case_loss(mechanism, loss, rows=None):
    """The pre-refactor evaluation: rebuilds the loss table per row.

    ``rows`` limits the evaluation to the first ``rows`` rows so the
    benchmark can time a slice of the quadratic-per-row reference and
    extrapolate instead of spending minutes in the old code path.
    """
    matrix = mechanism.matrix
    size = mechanism.size
    rows = size if rows is None else min(rows, size)
    return max(
        sum(
            loss_matrix(loss, mechanism.n)[i, r] * matrix[i, r]
            for r in range(size)
        )
        for i in range(rows)
    )


def reference_inverse(matrix: RationalMatrix) -> RationalMatrix:
    """The pre-refactor naive Fraction Gauss-Jordan inverse."""
    size = matrix.shape[0]
    work = [
        list(row) + [Fraction(int(i == j)) for j in range(size)]
        for i, row in enumerate(matrix.rows())
    ]
    for col in range(size):
        pivot_row = next(r for r in range(col, size) if work[r][col] != 0)
        if pivot_row != col:
            work[col], work[pivot_row] = work[pivot_row], work[col]
        pivot = work[col][col]
        work[col] = [entry / pivot for entry in work[col]]
        for r in range(size):
            if r == col or work[r][col] == 0:
                continue
            factor = work[r][col]
            work[r] = [
                entry - factor * top for entry, top in zip(work[r], work[col])
            ]
    return RationalMatrix([row[size:] for row in work])


def bench_geometric_matrix(n):
    loops = best_of(lambda: _geometric_matrix_loops(n, 0.5), repeats=3)
    vectorized = best_of(lambda: geometric_matrix(n, 0.5), repeats=9)
    return {
        "n": n,
        "loop_seconds": loops,
        "vectorized_seconds": vectorized,
        "speedup": loops / vectorized,
    }


def bench_worst_case_loss(n, sample_rows=8):
    mechanism = GeometricMechanism(n, 0.5)
    loss = AbsoluteLoss()
    # Time the old path on a slice of rows and scale up: it is linear in
    # the row count (each row rebuilds the full O(n^2) loss table).
    sample_rows = min(sample_rows, mechanism.size)
    sampled = best_of(
        lambda: reference_worst_case_loss(mechanism, loss, rows=sample_rows),
        repeats=1,
    )
    old = sampled * mechanism.size / sample_rows
    mechanism.worst_case_loss(loss)  # warm the shared loss-table cache
    new = best_of(lambda: mechanism.worst_case_loss(loss), repeats=5)
    return {
        "n": n,
        "rebuild_seconds_extrapolated": old,
        "cached_vectorized_seconds": new,
        "speedup": old / new,
    }


def bench_publish_batch(batch_size):
    publisher = Publisher(flu_population(40, 3), Fraction(1, 2))
    queries = [flu_query()] * batch_size
    rng_batch = np.random.default_rng(0)
    batch = best_of(
        lambda: publisher.publish_batch(queries, rng_batch), repeats=1
    )
    rng_loop = np.random.default_rng(0)
    sequential = best_of(
        lambda: [publisher.publish(query, rng_loop) for query in queries],
        repeats=1,
    )
    return {
        "batch_size": batch_size,
        "sequential_seconds": sequential,
        "batch_seconds": batch,
        "speedup": sequential / batch,
    }


def bench_exact_inverse(size):
    matrix = kms_matrix(size, Fraction(3, 7))
    naive = best_of(lambda: reference_inverse(matrix), repeats=1)
    bareiss = best_of(matrix.inverse, repeats=3)
    assert matrix.inverse() == reference_inverse(matrix)
    return {
        "size": size,
        "naive_seconds": naive,
        "bareiss_seconds": bareiss,
        "speedup": naive / bareiss,
    }


def check_exact_bit_identity(n, alpha):
    vectorized = geometric_matrix(n, alpha)
    loops = _geometric_matrix_loops(n, alpha)
    identical = bool((vectorized == loops).all())
    assert identical, "exact geometric_matrix diverged from the loop build"
    return {"n": n, "alpha": str(alpha), "bit_identical": identical}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes for a CI smoke run",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when full-mode speedup targets are missed",
    )
    args = parser.parse_args(argv)

    if args.quick:
        sizes = {"geometric": 128, "worst_case": 48, "batch": 2000, "kms": 12}
    else:
        sizes = {"geometric": 512, "worst_case": 256, "batch": 10000, "kms": 24}

    results = {
        "quick": args.quick,
        "geometric_matrix_float": bench_geometric_matrix(sizes["geometric"]),
        "worst_case_loss_float": bench_worst_case_loss(sizes["worst_case"]),
        "publish_batch": bench_publish_batch(sizes["batch"]),
        "exact_inverse_bareiss": bench_exact_inverse(sizes["kms"]),
        "exact_bit_identity": check_exact_bit_identity(64, Fraction(1, 3)),
        "targets": {
            "geometric_matrix_float": 20.0,
            "worst_case_loss_float": 10.0,
        },
    }

    lines = [
        "fast-path speedups (loop/reference vs vectorized/cached):",
        "  geometric_matrix float n={n}: {speedup:8.1f}x "
        "({loop_seconds:.4f}s -> {vectorized_seconds:.6f}s)".format(
            **results["geometric_matrix_float"]
        ),
        "  worst_case_loss  float n={n}: {speedup:8.1f}x "
        "({rebuild_seconds_extrapolated:.4f}s extrapolated -> "
        "{cached_vectorized_seconds:.6f}s)".format(
            **results["worst_case_loss_float"]
        ),
        "  publish_batch  {batch_size} queries: {speedup:8.1f}x "
        "({sequential_seconds:.4f}s -> {batch_seconds:.6f}s)".format(
            **results["publish_batch"]
        ),
        "  exact inverse (KMS {size}x{size}): {speedup:8.1f}x "
        "({naive_seconds:.4f}s -> {bareiss_seconds:.6f}s)".format(
            **results["exact_inverse_bareiss"]
        ),
        "  exact geometric_matrix n=64 bit-identical: {0}".format(
            results["exact_bit_identity"]["bit_identical"]
        ),
    ]
    emit("fastpath", "\n".join(lines))
    emit_bench("fastpath", results)

    if args.check and not args.quick:
        failures = []
        for key, target in results["targets"].items():
            speedup = results[key]["speedup"]
            if speedup < target:
                failures.append(f"{key}: {speedup:.1f}x < {target:.0f}x")
        if failures:
            print("fastpath targets missed: " + "; ".join(failures))
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
