"""Experiment X2 — scaling: LP sizes and solve times versus n.

Not a paper table, but the reproduction's operational envelope: how the
Section 2.5 LP grows ((n+1)^2 + 1 variables, O(n^2) constraints) and how
the two backends compare. The exact simplex reproduces paper tables at
small n; HiGHS carries realistic survey sizes.
"""

import time
from fractions import Fraction

from _report import emit

from repro.core.optimal import build_optimal_lp, optimal_mechanism
from repro.losses import AbsoluteLoss
from repro.losses.base import loss_matrix


def lp_dimensions(n):
    table = loss_matrix(AbsoluteLoss(), n)
    program, _ = build_optimal_lp(
        n, Fraction(1, 2), table, list(range(n + 1))
    )
    return program.num_vars, program.num_constraints()


def solve_float(n):
    return optimal_mechanism(n, 0.5, AbsoluteLoss(), exact=False)


def test_lp_scaling_float_backend(benchmark):
    result = benchmark(solve_float, 20)
    assert result.mechanism.n == 20

    lines = ["   n  vars  constraints  HiGHS(s)  exact(s)"]
    for n in (2, 4, 6, 10, 16, 24):
        num_vars, num_constraints = lp_dimensions(n)
        start = time.perf_counter()
        solve_float(n)
        float_seconds = time.perf_counter() - start
        if n <= 6:
            start = time.perf_counter()
            optimal_mechanism(n, Fraction(1, 2), AbsoluteLoss(), exact=True)
            exact_seconds = f"{time.perf_counter() - start:8.3f}"
        else:
            exact_seconds = "       -"
        lines.append(
            f"  {n:>2}  {num_vars:>4}  {num_constraints:>11}  "
            f"{float_seconds:8.3f}  {exact_seconds}"
        )
    emit("scaling", "bespoke-LP scaling (loss=|i-r|):\n" + "\n".join(lines))
