"""Benchmark: exact LP solve latency across solver backends.

Times the Section 2.5 bespoke-optimal LP (the workhorse behind every
theorem check) on three exact backends:

* ``legacy-fraction-simplex`` — the pre-refactor reference: a dense
  Fraction tableau paying per-entry gcd normalization on every pivot
  (preserved here, like the other reference implementations in this
  suite, so the speedup trajectory stays measurable);
* ``exact-simplex`` — the integer fraction-free (Bareiss/Edmonds
  pivoting) tableau;
* ``hybrid-certified`` — certify-first: float HiGHS solve, exact sparse
  basis reconstruction, exact primal/dual certificate.

All three must agree exactly: objectives are compared as Fractions, and
the simplex variants (which share pivot rules) must match entry-for-
entry; the hybrid's certified vertex is checked against the simplex
vertex on the paper-style instances, where the optimum is unique.

Standalone: ``PYTHONPATH=src:benchmarks python benchmarks/bench_lp_solvers.py``
(``--quick`` for a CI smoke run, ``--check`` to fail when full-mode
speedup targets are missed; in quick mode ``--check`` only enforces the
exactness assertions). Emits a ``BENCH {json}`` line and archives a
report under ``benchmarks/out/``.
"""

import argparse
import sys
import time
from fractions import Fraction

from _report import emit, emit_bench

from repro.core.optimal import build_optimal_lp
from repro.losses import AbsoluteLoss
from repro.losses.base import loss_matrix
from repro.solvers.base import LinearProgram, LPSolution, coerce_exact
from repro.solvers.hybrid import HybridBackend
from repro.solvers.simplex import ExactSimplexBackend
from repro.exceptions import (
    InfeasibleProgramError,
    SolverError,
    UnboundedProgramError,
)

_ZERO = Fraction(0)
_ONE = Fraction(1)


def best_of(fn, repeats=3):
    """Minimum wall time of ``repeats`` runs plus the last result."""
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return min(times), result


# ---------------------------------------------------------------------------
# Pre-refactor reference: dense Fraction tableau (per-entry gcd per pivot).
# ---------------------------------------------------------------------------
class _LegacyTableau:
    def __init__(self, rows, basis, num_columns):
        self.rows = rows
        self.basis = basis
        self.num_columns = num_columns
        self.objective = []

    def set_objective(self, costs):
        reduced = list(costs) + [_ZERO]
        for row_index, basic_var in enumerate(self.basis):
            coeff = reduced[basic_var]
            if coeff != 0:
                row = self.rows[row_index]
                for j in range(self.num_columns + 1):
                    reduced[j] -= coeff * row[j]
        self.objective = reduced

    def objective_value(self):
        return -self.objective[self.num_columns]

    def pivot(self, pivot_row, pivot_col):
        row = self.rows[pivot_row]
        inv = _ONE / row[pivot_col]
        self.rows[pivot_row] = [entry * inv for entry in row]
        row = self.rows[pivot_row]
        for other_index, other in enumerate(self.rows):
            if other_index == pivot_row or other[pivot_col] == 0:
                continue
            factor = other[pivot_col]
            self.rows[other_index] = [
                entry - factor * pivot_entry
                for entry, pivot_entry in zip(other, row)
            ]
        if self.objective and self.objective[pivot_col] != 0:
            factor = self.objective[pivot_col]
            self.objective = [
                entry - factor * pivot_entry
                for entry, pivot_entry in zip(self.objective, row)
            ]
        self.basis[pivot_row] = pivot_col

    def run(self, allowed_columns):
        allowed = sorted(allowed_columns)
        stall_budget = 12 * (len(self.rows) + 1)
        stalled = 0
        last_objective = self.objective_value()
        use_bland = False
        while True:
            entering = self._entering_column(allowed, use_bland)
            if entering is None:
                return
            pivot_row = None
            best_ratio = None
            for row_index, row in enumerate(self.rows):
                coeff = row[entering]
                if coeff <= 0:
                    continue
                ratio = row[self.num_columns] / coeff
                if (
                    best_ratio is None
                    or ratio < best_ratio
                    or (
                        ratio == best_ratio
                        and self.basis[row_index] < self.basis[pivot_row]
                    )
                ):
                    best_ratio = ratio
                    pivot_row = row_index
            if pivot_row is None:
                raise UnboundedProgramError("unbounded")
            self.pivot(pivot_row, entering)
            objective = self.objective_value()
            if objective == last_objective:
                stalled += 1
                if stalled >= stall_budget:
                    use_bland = True
            else:
                stalled = 0
                use_bland = False
                last_objective = objective

    def _entering_column(self, allowed, use_bland):
        if use_bland:
            return next((j for j in allowed if self.objective[j] < 0), None)
        entering = None
        most_negative = _ZERO
        for j in allowed:
            if self.objective[j] < most_negative:
                most_negative = self.objective[j]
                entering = j
        return entering


class LegacyFractionSimplex:
    """The pre-refactor exact backend, kept verbatim as the baseline."""

    name = "legacy-fraction-simplex"

    def solve(self, program: LinearProgram) -> LPSolution:
        tableau, structural = self._build(program)
        self._phase_one(tableau)
        costs = [_ZERO] * tableau.num_columns
        for var, coeff in program.objective_terms:
            costs[var] += coerce_exact(coeff)
        tableau.set_objective(costs)
        tableau.run(range(self._artificial_start))
        solution = [_ZERO] * program.num_vars
        for row_index, basic_var in enumerate(tableau.basis):
            if basic_var < program.num_vars:
                solution[basic_var] = tableau.rows[row_index][
                    tableau.num_columns
                ]
        return LPSolution(
            values=solution,
            objective=tableau.objective_value(),
            backend=self.name,
        )

    def _build(self, program):
        num_structural = program.num_vars
        prepared = []
        for terms, rhs in program.le_constraints:
            dense = [_ZERO] * num_structural
            for var, coeff in terms:
                dense[var] += coerce_exact(coeff)
            rhs = coerce_exact(rhs)
            if rhs < 0:
                prepared.append(([-e for e in dense], -rhs, "ge"))
            else:
                prepared.append((dense, rhs, "le"))
        for terms, rhs in program.eq_constraints:
            dense = [_ZERO] * num_structural
            for var, coeff in terms:
                dense[var] += coerce_exact(coeff)
            rhs = coerce_exact(rhs)
            if rhs < 0:
                dense = [-e for e in dense]
                rhs = -rhs
            prepared.append((dense, rhs, "eq"))
        num_slack = sum(1 for _, _, k in prepared if k in ("le", "ge"))
        num_artificial = sum(1 for _, _, k in prepared if k in ("ge", "eq"))
        total = num_structural + num_slack + num_artificial
        slack_cursor = num_structural
        artificial_cursor = num_structural + num_slack
        self._artificial_start = artificial_cursor
        rows, basis = [], []
        for dense, rhs, kind in prepared:
            row = list(dense) + [_ZERO] * (num_slack + num_artificial)
            row.append(rhs)
            if kind == "le":
                row[slack_cursor] = _ONE
                basis.append(slack_cursor)
                slack_cursor += 1
            elif kind == "ge":
                row[slack_cursor] = -_ONE
                slack_cursor += 1
                row[artificial_cursor] = _ONE
                basis.append(artificial_cursor)
                artificial_cursor += 1
            else:
                row[artificial_cursor] = _ONE
                basis.append(artificial_cursor)
                artificial_cursor += 1
            rows.append(row)
        if not rows:
            raise SolverError("program has no constraints")
        return _LegacyTableau(rows, basis, total), num_structural

    def _phase_one(self, tableau):
        artificial_start = self._artificial_start
        total = tableau.num_columns
        if artificial_start == total:
            return
        costs = [_ZERO] * total
        for j in range(artificial_start, total):
            costs[j] = _ONE
        tableau.set_objective(costs)
        tableau.run(range(artificial_start))
        if tableau.objective_value() != 0:
            raise InfeasibleProgramError("infeasible")
        removable = []
        for row_index, basic_var in enumerate(tableau.basis):
            if basic_var < artificial_start:
                continue
            row = tableau.rows[row_index]
            pivot_col = next(
                (j for j in range(artificial_start) if row[j] != 0), None
            )
            if pivot_col is None:
                removable.append(row_index)
            else:
                tableau.pivot(row_index, pivot_col)
        for row_index in sorted(removable, reverse=True):
            del tableau.rows[row_index]
            del tableau.basis[row_index]


# ---------------------------------------------------------------------------
def optimal_lp_instance(n, alpha):
    table = loss_matrix(AbsoluteLoss(), n)
    program, _ = build_optimal_lp(n, alpha, table, list(range(n + 1)))
    return program


def bench_instance(n, alpha, *, with_legacy=True, require_certified=False):
    program = optimal_lp_instance(n, alpha)
    integer_seconds, integer = best_of(
        lambda: ExactSimplexBackend().solve(program), repeats=3
    )
    hybrid_backend = HybridBackend()
    hybrid_seconds, hybrid = best_of(
        lambda: hybrid_backend.solve(program), repeats=3
    )
    if require_certified:
        # Full mode only: the speedup targets are meaningless if the
        # solve routed through the simplex fallback. Fallback stays a
        # legitimate outcome for smoke runs (it is exact either way).
        assert hybrid_backend.last_path == "certified", (
            f"expected certification at n={n}, got "
            f"{hybrid_backend.last_path}"
        )
    assert hybrid.objective == integer.objective, "exact objectives diverged"
    assert hybrid.values == integer.values, (
        "hybrid vertex diverged from the simplex vertex"
    )
    result = {
        "n": n,
        "alpha": str(alpha),
        "num_vars": program.num_vars,
        "num_constraints": program.num_constraints(),
        "integer_simplex_seconds": integer_seconds,
        "hybrid_seconds": hybrid_seconds,
        "hybrid_vs_integer": integer_seconds / hybrid_seconds,
        "solve_path": hybrid_backend.last_path,
    }
    if with_legacy:
        legacy_seconds, legacy = best_of(
            lambda: LegacyFractionSimplex().solve(program), repeats=1
        )
        assert legacy.objective == integer.objective
        assert legacy.values == integer.values, (
            "integer pivoting diverged from the Fraction tableau"
        )
        result["legacy_fraction_seconds"] = legacy_seconds
        result["integer_vs_legacy"] = legacy_seconds / integer_seconds
        result["hybrid_vs_legacy"] = legacy_seconds / hybrid_seconds
    return result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for a CI smoke run"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when full-mode speedup targets are missed "
        "(quick mode still enforces the exact-equality assertions)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        instances = [(3, Fraction(1, 4)), (4, Fraction(1, 3))]
    else:
        instances = [
            (4, Fraction(1, 3)),
            (6, Fraction(1, 3)),
            (7, Fraction(1, 3)),
        ]

    rows = [
        bench_instance(
            n, alpha, with_legacy=True, require_certified=not args.quick
        )
        for n, alpha in instances
    ]
    targets = {
        # Acceptance: certify-first beats the (already integer-pivoting)
        # exact simplex by >= 5x on every benched instance with n >= 6.
        "hybrid_vs_integer_at_n6plus": 5.0,
        "integer_vs_legacy": 5.0,
    }
    results = {
        "quick": args.quick,
        "instances": rows,
        "targets": targets,
    }

    lines = ["exact LP solve latency (Section 2.5 bespoke-optimal LP):"]
    for row in rows:
        lines.append(
            "  n={n} ({num_vars} vars, {num_constraints} rows): "
            "legacy {legacy_fraction_seconds:8.4f}s -> "
            "integer simplex {integer_simplex_seconds:8.4f}s "
            "({integer_vs_legacy:5.1f}x) -> "
            "hybrid {hybrid_seconds:8.4f}s "
            "({hybrid_vs_integer:5.1f}x vs simplex, "
            "{hybrid_vs_legacy:6.1f}x vs legacy, "
            "{solve_path})".format(**row)
        )
    lines.append("  all backends exact-identical: True (asserted)")
    emit("lp_solvers", "\n".join(lines))
    emit_bench("lp_solvers", results)

    if args.check and not args.quick:
        failures = []
        for row in rows:
            if row["n"] >= 6 and row["hybrid_vs_integer"] < targets[
                "hybrid_vs_integer_at_n6plus"
            ]:
                failures.append(
                    f"hybrid at n={row['n']}: "
                    f"{row['hybrid_vs_integer']:.1f}x < 5x"
                )
            if row["integer_vs_legacy"] < targets["integer_vs_legacy"]:
                failures.append(
                    f"integer simplex at n={row['n']}: "
                    f"{row['integer_vs_legacy']:.1f}x < 5x"
                )
        if failures:
            print("lp-solver targets missed: " + "; ".join(failures))
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
