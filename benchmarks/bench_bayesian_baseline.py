"""Experiment C1 — Section 2.7: minimax (this paper) vs Bayesian (GRS09).

Two regenerated contrasts:

* the GRS09 baseline result the paper generalizes — the geometric
  mechanism is universally optimal for Bayesian consumers too (gap 0
  across priors and losses);
* the structural difference the paper highlights: Bayesian optimal
  post-processing is *deterministic* (0/1 kernels), minimax optimal
  post-processing genuinely randomizes (Table 1(c) has a 68/83-15/83
  row).
"""

from fractions import Fraction

import numpy as np
from _report import emit

from repro.agents.bayesian import BayesianAgent
from repro.analysis.sweeps import bayesian_universality_sweep
from repro.core.geometric import GeometricMechanism
from repro.core.interaction import optimal_interaction
from repro.losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss

N = 3
ALPHA = Fraction(1, 2)
PRIORS = {
    "uniform": [Fraction(1, 4)] * 4,
    "skewed": [Fraction(1, 2), Fraction(1, 4), Fraction(1, 8), Fraction(1, 8)],
    "bimodal": [Fraction(2, 5), Fraction(1, 10), Fraction(1, 10), Fraction(2, 5)],
}
LOSSES = [AbsoluteLoss(), SquaredLoss(), ZeroOneLoss()]


def run_sweep():
    cases = [
        (N, ALPHA, loss, prior)
        for loss in LOSSES
        for prior in PRIORS.values()
    ]
    return bayesian_universality_sweep(cases, exact=True)


def test_bayesian_universality(benchmark):
    records = benchmark(run_sweep)
    assert len(records) == 9
    assert all(record.holds for record in records)
    assert all(record.gap == 0 for record in records)

    emit(
        "bayesian_baseline_universality",
        "GRS09 baseline: geometric universally optimal for all 9 "
        "Bayesian consumers (gap == 0 exactly)\n"
        + "\n".join(
            f"  {r.loss_name:<28.28} bespoke={r.bespoke_loss} "
            f"interaction={r.interaction_loss}"
            for r in records
        ),
    )


def test_deterministic_vs_randomized_postprocessing(benchmark):
    g = GeometricMechanism(N, ALPHA)

    # Bayesian: every kernel row is a point mass.
    bayes_rows = []
    for name, prior in PRIORS.items():
        agent = BayesianAgent(AbsoluteLoss(), prior, n=N)
        kernel = agent.best_interaction(g).kernel
        support_sizes = [
            sum(1 for entry in kernel[r] if entry != 0) for r in range(N + 1)
        ]
        assert all(size == 1 for size in support_sizes)
        bayes_rows.append(f"  bayesian ({name}): deterministic remap")

    # Minimax: the optimal kernel randomizes on some row.
    minimax = benchmark(
        optimal_interaction, g, AbsoluteLoss(), None, exact=True
    )
    support_sizes = [
        sum(1 for entry in minimax.kernel[r] if entry != 0)
        for r in range(N + 1)
    ]
    assert max(support_sizes) >= 2

    emit(
        "bayesian_vs_minimax_postprocessing",
        "\n".join(bayes_rows)
        + f"\n  minimax: kernel row supports {support_sizes} "
        "(genuinely randomized, as Section 2.7 notes)",
    )
