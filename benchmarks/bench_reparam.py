"""Benchmark: derivability-reparameterized (factor-space) LP solving.

Theorem 2 proves every minimax-optimal mechanism factors through the
geometric mechanism as ``x = G @ T`` with ``T`` row-stochastic, so the
Section 2.5 LP can be solved over ``(T, d)`` where the ``Theta(n^2)``
privacy block collapses into non-negativity and only ``Theta(n)`` rows
remain. This benchmark measures that reformulation against the PR 2
certify-first hybrid on Table-1-style instances (absolute loss, full
side information):

* ``hybrid_seconds`` — the PR 2 baseline: ``HybridBackend`` on the full
  x-space program;
* ``factor_solve_seconds`` — the reparameterized solve: build the
  factor program, direct-HiGHS solve with basis extraction, exact
  vertex reconstruction, and the exact map back to mechanism space;
* ``factor_certified_seconds`` — the same plus the exact x-space
  primal/dual certificate (the correctness gate the production path
  runs; ``None`` is never tolerated here).

Optimal losses must be bit-identical across both paths (``168/415`` for
the Table 1 cell), and every factor-space solution must pass the
certificate. A second benchmark runs a universality sweep twice against
one persistent :class:`repro.solvers.cache.SolveCache` directory and
asserts the warm run performs **zero LP solves** (cache misses == 0).

Standalone: ``PYTHONPATH=src:benchmarks python benchmarks/bench_reparam.py``
(``--quick`` for a CI smoke run, ``--check`` to fail when the full-mode
speedup floor — factor solve >= 3x hybrid at n >= 6 — is missed; in
quick mode ``--check`` enforces the exactness, certificate, and
warm-cache assertions only). Emits a ``BENCH {json}`` line, writes
``benchmarks/out/BENCH_reparam.json``, and archives a report.
"""

import argparse
import sys
import tempfile
import time
from fractions import Fraction

from _report import emit, emit_bench

from repro.analysis.sweeps import universality_sweep
from repro.core.optimal import build_optimal_lp, factor_space_candidate
from repro.losses import AbsoluteLoss, SquaredLoss
from repro.losses.base import loss_matrix
from repro.solvers.cache import SolveCache
from repro.solvers.hybrid import HybridBackend, certify_solution
from repro.solvers.scipy_backend import has_direct_highs


def best_of(fn, repeats=3):
    """Minimum wall time of ``repeats`` runs plus the last result."""
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return min(times), result


def bench_instance(n, alpha, *, repeats=3, require_certified=False):
    table = loss_matrix(AbsoluteLoss(), n)
    members = list(range(n + 1))
    program, _ = build_optimal_lp(n, alpha, table, members)
    factor_program, _ = build_optimal_lp(
        n, alpha, table, members, space="factor"
    )

    hybrid_backend = HybridBackend()
    hybrid_seconds, hybrid = best_of(
        lambda: hybrid_backend.solve(program), repeats=repeats
    )
    if require_certified:
        # Full mode only: comparing against a hybrid run that routed
        # through the simplex fallback would flatter the speedup.
        assert hybrid_backend.last_path == "certified", (
            f"expected a certified hybrid baseline at n={n}, got "
            f"{hybrid_backend.last_path}"
        )

    def factor_solve():
        candidate = factor_space_candidate(n, alpha, table, members)
        assert candidate is not None, (
            f"factor-space solve failed at n={n} (direct HiGHS basis "
            f"unavailable or degenerate)"
        )
        return candidate

    factor_seconds, candidate = best_of(factor_solve, repeats=repeats)

    def certify():
        certified = certify_solution(
            program, candidate.values, name="factor-certified"
        )
        assert certified is not None, (
            f"x-space certificate failed at n={n}: the factor-space "
            f"solution could not be proven optimal"
        )
        return certified

    certify_seconds, certified = best_of(certify, repeats=repeats)

    assert candidate.objective == hybrid.objective, (
        f"factor-space optimum diverged at n={n}: "
        f"{candidate.objective} != {hybrid.objective}"
    )
    assert certified.objective == hybrid.objective
    total = factor_seconds + certify_seconds
    return {
        "n": n,
        "alpha": str(alpha),
        "x_rows": program.num_constraints(),
        "factor_rows": factor_program.num_constraints(),
        "objective": str(candidate.objective),
        "hybrid_seconds": hybrid_seconds,
        "factor_solve_seconds": factor_seconds,
        "factor_certify_seconds": certify_seconds,
        "factor_certified_seconds": total,
        "factor_solve_vs_hybrid": hybrid_seconds / factor_seconds,
        "factor_certified_vs_hybrid": hybrid_seconds / total,
        "hybrid_path": hybrid_backend.last_path,
    }


def bench_warm_cache(quick):
    """Sweep twice against one cache directory; warm run = zero solves."""
    sizes = (2, 3) if quick else (3, 4, 5)
    cases = [
        (n, alpha, loss, None)
        for n in sizes
        for alpha in (Fraction(1, 2), Fraction(1, 3))
        for loss in (AbsoluteLoss(), SquaredLoss())
    ]
    with tempfile.TemporaryDirectory() as directory:
        cold_cache = SolveCache(directory)
        cold_start = time.perf_counter()
        cold_records = universality_sweep(
            cases, exact=True, solve_cache=cold_cache
        )
        cold_seconds = time.perf_counter() - cold_start
        warm_cache = SolveCache(directory)  # fresh stats, shared directory
        warm_start = time.perf_counter()
        warm_records = universality_sweep(
            cases, exact=True, solve_cache=warm_cache
        )
        warm_seconds = time.perf_counter() - warm_start
    assert warm_cache.stats["misses"] == 0, (
        f"warm sweep still solved LPs: {warm_cache.stats}"
    )
    assert warm_cache.stats["hits"] == 2 * len(cases)
    assert [
        (record.bespoke_loss, record.interaction_loss, record.holds)
        for record in cold_records
    ] == [
        (record.bespoke_loss, record.interaction_loss, record.holds)
        for record in warm_records
    ], "warm-cache sweep records diverged from the cold run"
    assert all(record.holds for record in warm_records)
    return {
        "cells": len(cases),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": cold_seconds / warm_seconds,
        "cold_stats": dict(cold_cache.stats),
        "warm_stats": dict(warm_cache.stats),
        "warm_lp_solves": warm_cache.stats["misses"],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for a CI smoke run"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when full-mode speedup targets are missed "
        "(quick mode still enforces exactness, certificates, and the "
        "zero-solve warm cache)",
    )
    args = parser.parse_args(argv)

    if not has_direct_highs():
        print(
            "bench_reparam: direct HiGHS bindings unavailable in this "
            "scipy build; factor-space fast path cannot run"
        )
        return 1 if args.check else 0

    if args.quick:
        instances = [(3, Fraction(1, 4)), (4, Fraction(1, 3))]
        repeats = 3
    else:
        instances = [
            (3, Fraction(1, 4)),
            (6, Fraction(1, 3)),
            (7, Fraction(1, 3)),
            (9, Fraction(1, 3)),
        ]
        repeats = 5

    rows = [
        bench_instance(
            n, alpha, repeats=repeats, require_certified=not args.quick
        )
        for n, alpha in instances
    ]
    table1 = next(row for row in rows if row["n"] == 3)
    assert table1["objective"] == "168/415", (
        f"Table 1 cell objective {table1['objective']} != 168/415"
    )
    warm = bench_warm_cache(args.quick)

    targets = {
        # Acceptance: the reparameterized solve beats the PR 2 hybrid by
        # >= 3x on every benched Table-1-style instance with n >= 6.
        "factor_solve_vs_hybrid_at_n6plus": 3.0,
    }
    results = {
        "quick": args.quick,
        "instances": rows,
        "warm_cache_sweep": warm,
        "targets": targets,
    }

    lines = [
        "derivability-reparameterized (factor-space) LP solves vs PR 2 hybrid:",
    ]
    for row in rows:
        lines.append(
            "  n={n} ({x_rows} x-rows -> {factor_rows} factor-rows, "
            "optimum {objective}): hybrid {hybrid_seconds:8.4f}s -> "
            "factor solve {factor_solve_seconds:8.4f}s "
            "({factor_solve_vs_hybrid:5.1f}x), "
            "+certificate {factor_certified_seconds:8.4f}s "
            "({factor_certified_vs_hybrid:5.1f}x)".format(**row)
        )
    lines.append(
        "  all optimal losses bit-identical and every factor solution "
        "passed the exact x-space primal/dual certificate (asserted)"
    )
    lines.append(
        "  warm-cache sweep ({cells} cells): cold {cold_seconds:.3f}s -> "
        "warm {warm_seconds:.3f}s ({warm_speedup:.1f}x), "
        "warm LP solves: {warm_lp_solves}".format(**warm)
    )
    emit("reparam", "\n".join(lines))
    emit_bench("reparam", results)

    if args.check and not args.quick:
        failures = []
        floor = targets["factor_solve_vs_hybrid_at_n6plus"]
        for row in rows:
            if row["n"] >= 6 and row["factor_solve_vs_hybrid"] < floor:
                failures.append(
                    f"factor solve at n={row['n']}: "
                    f"{row['factor_solve_vs_hybrid']:.1f}x < {floor:.0f}x"
                )
        if failures:
            print("reparam targets missed: " + "; ".join(failures))
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
