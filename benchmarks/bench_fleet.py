"""Benchmark: the supervised multi-worker serving fleet.

PR 10 adds :class:`repro.serving.supervisor.ServingSupervisor`: N worker
processes sharing one ``SO_REUSEPORT`` listener, one durable WAL ledger,
and one artifact store, with admission control shedding overload before
any budget charge. This benchmark measures the three claims the fleet
makes:

* ``scaling`` — end-to-end HTTP throughput at 1 worker vs 4 workers.
  On a >= 4-core machine the fleet must deliver **>= 2x** the
  single-worker rate (the per-process GIL is the whole reason the fleet
  exists); on smaller machines (CI shards, laptops in powersave) the
  floor degrades to a sanity bound — the fleet must never be *slower*
  than half the single worker, i.e. supervision overhead is noise;
* ``shedding`` — a worker with a tiny admission queue under a flood:
  shed (429) responses must come back fast (**p99 under the ceiling**)
  because a shed happens *before* batching, sampling, or any ledger
  write — overload protection that queues is not protection;
* ``kill_restart`` — live traffic through 2 workers while one is
  SIGKILLed mid-run: after drain, every acknowledged 200 has its charge
  in the recovered WAL (**zero lost acked charges**) and the journal
  passes the integrity check.

Standalone: ``PYTHONPATH=src:benchmarks python benchmarks/bench_fleet.py``
(``--quick`` for a CI smoke run; ``--check`` enforces the floors).
Emits a ``BENCH {json}`` line and writes
``benchmarks/out/BENCH_fleet.json``.
"""

import argparse
import asyncio
import os
import sys
import tempfile
import time
from fractions import Fraction
from pathlib import Path

import numpy as np

from _report import emit, emit_bench

from repro.release.artifacts import ArtifactSpec, ArtifactStore
from repro.release.durable_ledger import DurableLedger, verify_ledger_dir
from repro.serving import HTTPServingClient, ServingSupervisor

HALF = Fraction(1, 2)

#: Fleet-vs-single throughput floor on a machine with >= 4 cores.
SCALING_FLOOR = 2.0
#: Sanity floor everywhere else: supervision must not cost throughput.
SCALING_SANITY_FLOOR = 0.5
#: Shed-latency ceiling: a 429 must return within this p99 (ms).
SHED_P99_CEILING_MS = 50.0


def make_fleet(tmp, tag, *, workers, floor=HALF ** 64, **config):
    store_dir = Path(tmp) / f"artifacts-{tag}"
    ledger_dir = Path(tmp) / f"ledger-{tag}"
    store = ArtifactStore(store_dir)
    store.get_or_compile(ArtifactSpec("geometric", 8, HALF))
    DurableLedger(ledger_dir, floor).close()  # settle meta/floor
    worker_config = {
        "store": str(store_dir),
        "floor": str(floor),
        "ledger_dir": str(ledger_dir),
        "ledger_fsync": "group",
        "audit_rate": 0.0,
        "seed": 31,
        "queue_depth": 256,
        "telemetry": False,
    }
    worker_config.update(config)
    fleet = ServingSupervisor(
        worker_config, workers=workers,
        heartbeat_interval=0.1, backoff_base=0.05,
    )
    return fleet, ledger_dir


async def flood(port, *, requests, concurrency, users, retries=2,
                supervisor=None, kill=None):
    """Drive ``requests`` publishes over ``concurrency`` connections.

    Returns (wall, per-user ack counts, latency array, status counts).
    With ``supervisor`` set, a side task keeps the supervision loop
    polling (restarts, heartbeats) while traffic flows; ``kill`` is an
    optional ``(at_request_index, slot)`` chaos action.
    """
    counter = iter(range(requests))
    latencies = []
    statuses = {}
    acked = {}
    killed = []

    async def supervise():
        while True:
            supervisor.poll()
            await asyncio.sleep(0.03)

    async def worker(wid):
        client = HTTPServingClient(
            "127.0.0.1", port, retries=retries, backoff=0.05,
            timeout=10.0, seed=wid,
        )
        try:
            for i in counter:
                if kill is not None and i == kill[0]:
                    killed.append(supervisor.kill_worker(kill[1]))
                user = f"u{i % users}"
                begin = time.perf_counter()
                try:
                    status, _ = await client.publish(
                        user=user, n=8, alpha="1/2", true_result=3
                    )
                except Exception:  # noqa: BLE001 - kill window
                    statuses["lost"] = statuses.get("lost", 0) + 1
                    await client.close()
                    continue
                latencies.append(time.perf_counter() - begin)
                statuses[status] = statuses.get(status, 0) + 1
                if status == 200:
                    acked[user] = acked.get(user, 0) + 1
        finally:
            await client.close()

    side = (
        asyncio.create_task(supervise()) if supervisor is not None else None
    )
    start = time.perf_counter()
    try:
        await asyncio.gather(*[worker(w) for w in range(concurrency)])
    finally:
        if side is not None:
            side.cancel()
            await asyncio.gather(side, return_exceptions=True)
    wall = time.perf_counter() - start
    return wall, acked, np.asarray(latencies), statuses, killed


def bench_scaling(tmp, *, workers, requests, concurrency, users):
    """HTTP throughput through a fleet of ``workers`` processes."""
    fleet, _ledger = make_fleet(tmp, f"scale{workers}", workers=workers)
    fleet.start()
    try:
        assert fleet.wait_ready(60), fleet.status()
        wall, acked, latencies, statuses, _ = asyncio.run(
            flood(
                fleet.port, requests=requests, concurrency=concurrency,
                users=users, supervisor=fleet,
            )
        )
    finally:
        fleet.lame_duck(drain_deadline=15.0)
    oks = sum(acked.values())
    assert statuses.get(200, 0) == oks == requests, statuses
    return {
        "workers": workers,
        "requests": requests,
        "concurrency": concurrency,
        "wall_seconds": wall,
        "qps": requests / wall,
        "latency_p50_ms": float(np.percentile(latencies, 50)) * 1e3,
        "latency_p99_ms": float(np.percentile(latencies, 99)) * 1e3,
    }


def bench_shedding(tmp, *, requests, concurrency, users):
    """Flood one worker with a tiny queue; time the 429s."""
    fleet, _ledger = make_fleet(
        tmp, "shed", workers=1,
        queue_depth=2, batch_window=0.02,
    )
    fleet.start()
    try:
        assert fleet.wait_ready(60), fleet.status()

        async def go():
            sheds = []
            oks = 0

            async def worker(wid):
                nonlocal oks
                client = HTTPServingClient(
                    "127.0.0.1", fleet.port, retries=0, timeout=10.0,
                    seed=wid,
                )
                try:
                    for i in range(requests // concurrency):
                        begin = time.perf_counter()
                        status, body = await client.publish(
                            user=f"u{(wid * 7919 + i) % users}",
                            n=8, alpha="1/2", true_result=3,
                        )
                        elapsed = time.perf_counter() - begin
                        if status == 429:
                            sheds.append(elapsed)
                            assert body["retry_after"] > 0
                        elif status == 200:
                            oks += 1
                finally:
                    await client.close()

            await asyncio.gather(*[worker(w) for w in range(concurrency)])
            return sheds, oks

        sheds, oks = asyncio.run(go())
    finally:
        fleet.lame_duck(drain_deadline=15.0)
    assert sheds, "the flood never overflowed the queue — not a flood"
    array = np.asarray(sheds)
    return {
        "requests": requests,
        "concurrency": concurrency,
        "queue_depth": 2,
        "admitted": oks,
        "shed": len(sheds),
        "shed_p50_ms": float(np.percentile(array, 50)) * 1e3,
        "shed_p99_ms": float(np.percentile(array, 99)) * 1e3,
    }


def bench_kill_restart(tmp, *, requests, concurrency, users):
    """SIGKILL a worker mid-traffic; prove no acked charge was lost."""
    floor = HALF ** 64
    fleet, ledger_dir = make_fleet(
        tmp, "kill", workers=2, floor=floor, ledger_fsync="always",
    )
    fleet.start()
    try:
        assert fleet.wait_ready(60), fleet.status()
        wall, acked, _lat, statuses, killed = asyncio.run(
            flood(
                fleet.port, requests=requests, concurrency=concurrency,
                users=users, retries=6,
                supervisor=fleet, kill=(requests // 3, 0),
            )
        )
        assert killed, "the kill never fired"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            fleet.poll()
            if fleet.wait_ready(0.2):
                break
        restarts = fleet.status()["stats"]["restarts"]
        assert restarts >= 1, fleet.status()
    finally:
        fleet.lame_duck(drain_deadline=15.0)

    report = verify_ledger_dir(ledger_dir)
    assert report["ok"], report["failures"]
    recovered = DurableLedger(ledger_dir)
    lost = 0
    for user, count in acked.items():
        budget = recovered.view(user)
        # The journal must hold >= `count` charges for this user: the
        # cumulative alpha is then <= alpha^count (charges multiply).
        if budget is None or budget.cumulative_alpha > HALF ** count:
            lost += 1
    recovered.close()
    assert lost == 0, f"{lost} users lost acknowledged charges"
    return {
        "requests": requests,
        "acknowledged": sum(acked.values()),
        "lost_in_flight": statuses.get("lost", 0),
        "restarts": restarts,
        "users_checked": len(acked),
        "lost_acked_charges": lost,
        "journal_records": report["records"],
        "integrity_ok": True,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small load for a CI smoke run"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when a fleet floor is missed: >= 2x "
        "single-worker qps at 4 workers (on >= 4 cores), shed p99 "
        "under the ceiling, zero lost acked charges after kill-restart",
    )
    args = parser.parse_args(argv)

    if args.quick:
        requests, concurrency, users = 600, 8, 64
        shed_requests, shed_concurrency = 240, 24
    else:
        requests, concurrency, users = 6_000, 32, 512
        shed_requests, shed_concurrency = 2_400, 48

    cpu_count = os.cpu_count() or 1
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        single = bench_scaling(
            tmp, workers=1, requests=requests,
            concurrency=concurrency, users=users,
        )
        quad = bench_scaling(
            tmp, workers=4, requests=requests,
            concurrency=concurrency, users=users,
        )
        shedding = bench_shedding(
            tmp, requests=shed_requests,
            concurrency=shed_concurrency, users=users,
        )
        kill = bench_kill_restart(
            tmp, requests=requests, concurrency=concurrency, users=users,
        )

    speedup = quad["qps"] / single["qps"]
    floor = SCALING_FLOOR if cpu_count >= 4 else SCALING_SANITY_FLOOR
    results = {
        "quick": args.quick,
        "cpu_count": cpu_count,
        "scaling": {"single": single, "quad": quad, "speedup": speedup},
        "shedding": shedding,
        "kill_restart": kill,
        "targets": {
            "scaling_floor": floor,
            "scaling_floor_is_degraded": cpu_count < 4,
            "shed_p99_ceiling_ms": SHED_P99_CEILING_MS,
        },
    }

    lines = ["supervised serving fleet:"]
    for row in (single, quad):
        lines.append(
            "  {workers} worker(s): {qps:8.0f} req/s  "
            "p50={latency_p50_ms:6.2f}ms p99={latency_p99_ms:6.2f}ms  "
            "({requests:,} requests x{concurrency} conns)".format(**row)
        )
    lines.append(
        f"  speedup at 4 workers: {speedup:.2f}x "
        f"(floor {floor:.1f}x on {cpu_count} cpus)"
    )
    lines.append(
        "  shedding: {shed:,} sheds / {admitted:,} admitted at "
        "queue_depth={queue_depth}; shed p50={shed_p50_ms:.2f}ms "
        "p99={shed_p99_ms:.2f}ms".format(**shedding)
    )
    lines.append(
        "  kill-restart: {acknowledged:,} acked, {restarts} restart(s), "
        "{lost_acked_charges} lost acked charges "
        "({journal_records} journal records; integrity OK)".format(**kill)
    )
    emit("fleet", "\n".join(lines))
    emit_bench("fleet", results)

    if args.check:
        failures = []
        if speedup < floor:
            failures.append(
                f"scaling floor missed: {speedup:.2f}x < {floor:.1f}x "
                f"({cpu_count} cpus)"
            )
        if shedding["shed_p99_ms"] > SHED_P99_CEILING_MS:
            failures.append(
                "shed p99 ceiling missed: "
                f"{shedding['shed_p99_ms']:.2f}ms > "
                f"{SHED_P99_CEILING_MS:.0f}ms"
            )
        if kill["lost_acked_charges"]:
            failures.append(
                f"{kill['lost_acked_charges']} lost acked charges"
            )
        for failure in failures:
            print("fleet target missed: " + failure)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
