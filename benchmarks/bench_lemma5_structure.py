"""Experiment L5 — Lemma 5: the structure of optimal mechanisms.

Paper claim: for every monotone loss there is an optimal mechanism whose
adjacent row pairs split into a lower-tight prefix, an upper-tight
suffix, and at most one free column (c2 - c1 in {1, 2}). The paper
obtains that optimum by refining with the secondary objective L'.

Regenerated: lexicographically-refined exact LP optima for the three
named losses x three alphas x several side-information sets, plus random
monotone losses — every pair must conform.
"""

from fractions import Fraction

import numpy as np
from _report import emit

from repro.core.optimal import optimal_mechanism
from repro.core.structure import analyze_structure
from repro.losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss
from repro.losses.random import random_monotone_loss

N = 3
ALPHAS = [Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)]
SIDES = [None, {0, 1}, {1, 2, 3}]


def cases():
    for alpha in ALPHAS:
        for loss in (AbsoluteLoss(), SquaredLoss(), ZeroOneLoss()):
            for side in SIDES:
                yield alpha, loss, side
    for seed in range(6):
        yield (
            Fraction(1, 2),
            random_monotone_loss(N, rng=np.random.default_rng(seed)),
            None,
        )


def sweep():
    results = []
    for alpha, loss, side in cases():
        refined = optimal_mechanism(
            N, alpha, loss, side, exact=True, refine=True
        )
        report = analyze_structure(refined.mechanism, alpha)
        results.append((alpha, loss.describe(), side, report))
    return results


def test_lemma5_structure(benchmark):
    results = benchmark(sweep)

    assert len(results) == 33
    assert all(report.conforms for _, _, _, report in results)

    lines = [
        f"  alpha={str(alpha):>4} {name:<28.28} S={str(side):<12.12} "
        + " ".join(f"(c1={p.c1},c2={p.c2})" for p in report.pairs)
        for alpha, name, side, report in results[:15]
    ]
    emit(
        "lemma5_structure",
        f"Lemma 5: all {len(results)} refined optima conform "
        "(c2 - c1 <= 2 on every adjacent row pair)\n" + "\n".join(lines),
    )
