"""Experiment T2 — Table 2: the matrices G_{n,alpha} and G'_{n,alpha}.

Paper artifact: the two displayed matrices and the relations between
them — G' is G with columns 0 and n scaled by (1+a) and the rest by
(1+a)/(1-a), and (Lemma 1) det G' = (1-a^2)^{m-1} > 0.

Regenerated for the Table 1 instance (n=3, alpha=1/4) and swept over
(n, alpha) for the determinant identity.
"""

from fractions import Fraction

from _report import emit

from repro.analysis.report import render_table2
from repro.analysis.tables import reproduce_table2


def regenerate():
    return reproduce_table2(3, Fraction(1, 4))


def test_table2_reproduction(benchmark):
    repro = benchmark(regenerate)

    assert repro.scaling_identity_holds
    assert repro.gprime_determinant == repro.gprime_determinant_formula
    assert repro.gprime_determinant == (1 - Fraction(1, 16)) ** 3

    sweep_lines = []
    for n in (1, 2, 3, 4, 6):
        for alpha in (Fraction(1, 5), Fraction(1, 2), Fraction(3, 4)):
            instance = reproduce_table2(n, alpha)
            assert instance.scaling_identity_holds
            assert (
                instance.gprime_determinant
                == instance.gprime_determinant_formula
            )
            sweep_lines.append(
                f"  n={n} alpha={alpha}: det G' = "
                f"{instance.gprime_determinant} = (1-a^2)^{n}"
            )

    emit(
        "table2_matrices",
        render_table2(repro)
        + "\n\ndeterminant identity sweep (all exact):\n"
        + "\n".join(sweep_lines),
    )
