"""Experiment B1 — Appendix B: a private, non-derivable mechanism.

Paper artifact: the explicit 1/2-DP matrix M with
(1+a^2) M[1,1] - a (M[0,1] + M[2,1]) = -0.75/9, proving M cannot be
derived from G_{3,1/2}. Regenerated exactly; the witness value must be
-1/12 at column 1.
"""

from fractions import Fraction

from _report import emit

from repro.analysis.fractions_fmt import format_matrix
from repro.core.counterexample import (
    appendix_b_mechanism,
    verify_appendix_b,
)


def test_appendix_b(benchmark):
    outcome = benchmark(verify_appendix_b)

    assert outcome["is_private"] is True
    assert outcome["derivable"] is False
    assert outcome["witness_value"] == Fraction(-1, 12)
    assert outcome["witness_value"] == Fraction(-75, 100) / 9
    assert outcome["witness"] == (1, 1)

    emit(
        "appendix_b_counterexample",
        "Appendix B mechanism M (alpha = 1/2):\n"
        + format_matrix(appendix_b_mechanism())
        + "\n\n"
        + f"1/2-differentially private: {outcome['is_private']}\n"
        + f"derivable from G_3,1/2:     {outcome['derivable']}\n"
        + "three-entry value at column 1, rows 0..2: "
        + f"{outcome['witness_value']} (paper: -0.75/9)",
    )
