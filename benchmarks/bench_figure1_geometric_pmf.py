"""Experiment F1 — Figure 1: the geometric mechanism's output pmf.

Paper artifact: the plot of the two-sided geometric distribution for
``alpha = 0.2`` and true query result 5, over outputs -20..20.
Regenerated here exactly (Fraction probabilities); the series must peak
at 5 with mass (1-a)/(1+a) = 2/3 and decay by a factor alpha per step.
"""

from fractions import Fraction

from _report import emit

from repro.analysis.figures import ascii_plot, figure1_series

ALPHA = Fraction(1, 5)
CENTER = 5


def regenerate():
    return figure1_series(ALPHA, center=CENTER, low=-20, high=20)


def test_figure1_series(benchmark):
    series = benchmark(regenerate)

    values = dict(series)
    # Shape assertions from the paper's figure.
    assert max(values, key=values.get) == CENTER
    assert values[CENTER] == Fraction(2, 3)
    for z in range(-19, 20):
        step = values[z + 1] / values[z] if values[z] else None
        if z + 1 <= CENTER:
            assert values[z + 1] >= values[z]
        if z >= CENTER:
            assert step == ALPHA

    rows = "\n".join(
        f"{z:>4}  {float(p):.10f}  ({p})" for z, p in series if -8 <= z <= 12
    )
    emit(
        "figure1_geometric_pmf",
        "Figure 1 series (alpha=0.2, result=5); exact probabilities\n"
        + rows
        + "\n\n"
        + ascii_plot(series, width=46),
    )
