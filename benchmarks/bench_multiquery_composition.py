"""Experiment X5 — the open problem: multiple queries.

The paper's conclusion asks whether universal optimality extends to
multiple queries. This bench maps the boundary with the extension
package: per-query, Theorem 1 survives verbatim (each release is a
geometric mechanism and every consumer of that query reaches its bespoke
optimum); jointly, independent releases compose multiplicatively — the
guarantee degrades exactly as the product rule predicts, and splitting a
fixed budget across k queries shows the per-query levels decaying toward
uselessness.
"""

from fractions import Fraction

from _report import emit

from repro.db.database import Database
from repro.db.predicates import Eq
from repro.db.queries import CountQuery
from repro.db.schema import Attribute, Schema
from repro.extensions.multiquery import (
    MultiQueryPublisher,
    compose_alphas,
    split_budget,
)
from repro.losses import AbsoluteLoss


def make_db():
    schema = Schema(
        [Attribute("sick", "bool"), Attribute("adult", "bool")]
    )
    return Database(
        schema,
        [{"sick": i % 2 == 0, "adult": i < 3} for i in range(4)],
    )


def run_experiment():
    publisher = MultiQueryPublisher(make_db())
    queries = [CountQuery(Eq("sick", True)), CountQuery(Eq("adult", True))]
    answer = publisher.answer(
        queries, [Fraction(1, 2), Fraction(1, 2)], rng=11
    )
    per_query_universal = publisher.verify_per_query_universality(
        Fraction(1, 2), AbsoluteLoss(), {1, 2, 3}
    )
    return answer, per_query_universal


def test_multiquery_composition(benchmark):
    answer, per_query_universal = benchmark(run_experiment)

    assert per_query_universal  # Theorem 1 survives per query
    assert answer.joint_alpha == Fraction(1, 4)  # ... but composes jointly
    assert answer.joint_alpha < min(answer.per_query_alpha)

    budget = Fraction(1, 2)
    split_lines = []
    for k in (1, 2, 4, 8):
        levels = split_budget(budget, k)
        recomposed = compose_alphas(
            [Fraction(l).limit_denominator(10**9) for l in levels]
        )
        split_lines.append(
            f"  k={k}: per-query alpha ~ {float(levels[0]):.4f}, "
            f"recomposed joint ~ {float(recomposed):.4f} <= {budget}"
        )
        assert float(recomposed) <= float(budget) + 1e-9

    emit(
        "multiquery_composition",
        "open problem (multiple queries), measured boundary:\n"
        f"  per-query universality (Theorem 1): {per_query_universal}\n"
        f"  2 queries at alpha=1/2 each: joint guarantee exactly "
        f"{answer.joint_alpha} (product rule)\n"
        f"budget split of alpha={budget} across k queries:\n"
        + "\n".join(split_lines),
    )
