"""Experiment X3 — geometric vs standard baselines, after interaction.

The paper's optimality is about *rationally consumed* mechanisms: for a
fixed privacy level alpha and any minimax consumer, the loss achievable
by post-processing G_{n,alpha} is minimal among ALL alpha-DP mechanisms.
Regenerated against two classical baselines at the same alpha —
truncated/rounded Laplace and randomized response — for three losses.
Shape: geometric <= laplace <= randomized response (with the randomized
response gap widening as the loss penalizes distance more).
"""

from fractions import Fraction

from _report import emit

from repro.core.baselines import (
    randomized_response_mechanism,
    truncated_laplace_mechanism,
)
from repro.core.geometric import GeometricMechanism
from repro.core.interaction import optimal_interaction
from repro.losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss

N = 5
ALPHA = Fraction(1, 2)
LOSSES = [AbsoluteLoss(), SquaredLoss(), ZeroOneLoss()]


def build_rows():
    mechanisms = {
        "geometric": GeometricMechanism(N, ALPHA).to_float(),
        "laplace": truncated_laplace_mechanism(N, float(ALPHA)),
        "rand-response": randomized_response_mechanism(N, float(ALPHA)),
    }
    rows = {}
    for loss in LOSSES:
        rows[loss.describe()] = {
            name: optimal_interaction(mechanism, loss, exact=False).loss
            for name, mechanism in mechanisms.items()
        }
    return rows


def test_baseline_comparison(benchmark):
    rows = benchmark(build_rows)

    for loss_name, losses in rows.items():
        # The universal optimum is never beaten at the same alpha.
        assert losses["geometric"] <= losses["laplace"] + 1e-7, loss_name
        assert (
            losses["geometric"] <= losses["rand-response"] + 1e-7
        ), loss_name

    lines = [f"  {'loss':<24} {'geometric':>10} {'laplace':>10} {'rand-resp':>10}"]
    for loss_name, losses in rows.items():
        lines.append(
            f"  {loss_name:<24} "
            f"{losses['geometric']:>10.4f} "
            f"{losses['laplace']:>10.4f} "
            f"{losses['rand-response']:>10.4f}"
        )
    emit(
        "baseline_mechanisms",
        f"post-interaction minimax loss at alpha={ALPHA}, n={N} "
        "(lower is better; geometric must win):\n" + "\n".join(lines),
    )
