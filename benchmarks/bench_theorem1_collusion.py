"""Experiment TH1a — Theorem 1 part 1 / Lemma 4: collusion resistance.

Paper claim: Algorithm 1's chained release is alpha_{min(C)}-DP for
every coalition C, while naive independent releases degrade to the
product of the levels. Regenerated two ways:

* exactly — the joint mechanism of every coalition of a 3-level chain
  has tightest privacy level exactly max(required), never worse;
* empirically — the averaging attack halves the MSE against naive
  releases but gains nothing against the chain.
"""

from fractions import Fraction

from _report import emit

from repro.analysis.fractions_fmt import format_value
from repro.core.multilevel import (
    MultiLevelRelease,
    naive_independent_release_alpha,
)
from repro.release.collusion import compare_release_strategies

N = 3
LEVELS = [Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)]


def verify_all():
    release = MultiLevelRelease(N, LEVELS)
    return release.verify_all_coalitions()


def test_collusion_resistance_exact(benchmark):
    checks = benchmark(verify_all)

    assert len(checks) == 7
    assert all(check.holds for check in checks)
    full = next(c for c in checks if c.coalition == (0, 1, 2))
    assert full.achieved_alpha == LEVELS[0]
    naive = naive_independent_release_alpha(LEVELS)
    assert naive < LEVELS[0]

    lines = [
        f"  coalition {str(check.coalition):<10} required "
        f"{format_value(check.required_alpha):>5}  achieved "
        f"{format_value(check.achieved_alpha):>5}  "
        f"{'OK' if check.holds else 'VIOLATED'}"
        for check in checks
    ]
    lines.append(
        f"  naive independent release joint level: {format_value(naive)} "
        f"(< {format_value(LEVELS[0])} -> privacy lost)"
    )
    emit(
        "theorem1_collusion_exact",
        "Lemma 4, all coalitions of a 3-level chain (exact):\n"
        + "\n".join(lines),
    )


def test_collusion_attack_empirical(benchmark):
    comparison = benchmark(
        compare_release_strategies,
        6,
        [Fraction(1, 2), Fraction(11, 20), Fraction(3, 5), Fraction(13, 20)],
        3,
        4000,
        123,
    )

    # Shape: naive collusion sharpens the attack, chaining does not.
    assert comparison.naive.mse < comparison.single_best.mse
    assert comparison.chained.mse >= comparison.single_best.mse * 0.9

    emit(
        "theorem1_collusion_empirical",
        "averaging attack, 4 releases, true result 3, n=6 "
        "(mean squared error / hit rate):\n"
        f"  single release:   mse={comparison.single_best.mse:.3f} "
        f"hit={comparison.single_best.hit_rate:.3f}\n"
        f"  naive independent: mse={comparison.naive.mse:.3f} "
        f"hit={comparison.naive.hit_rate:.3f}   <- collusion pays\n"
        f"  Algorithm 1 chain: mse={comparison.chained.mse:.3f} "
        f"hit={comparison.chained.hit_rate:.3f}   <- collusion useless",
    )
