"""Tests for RNG normalization."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.sampling.rng import ensure_generator


class TestEnsureGenerator:
    def test_none_gives_generator(self):
        assert isinstance(ensure_generator(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_generator(42).random()
        b = ensure_generator(42).random()
        assert a == b

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert ensure_generator(rng) is rng

    def test_numpy_integer_seed(self):
        assert isinstance(
            ensure_generator(np.int64(7)), np.random.Generator
        )

    def test_bad_seed_rejected(self):
        with pytest.raises(ValidationError):
            ensure_generator("seed")
        with pytest.raises(ValidationError):
            ensure_generator(True)
