"""Tests for exact Walker/Vose alias tables and the row samplers."""

from fractions import Fraction

import numpy as np
import pytest

import repro
from repro.core.geometric import geometric_matrix
from repro.exceptions import ValidationError
from repro.sampling.alias import (
    _SAMPLER_CACHE,
    _SAMPLER_CACHE_ENTRIES,
    AliasTable,
    HeterogeneousAliasSampler,
    RowAliasSampler,
    cached_geometric_sampler,
    clear_alias_cache,
)
from repro.sampling.geometric import two_sided_geometric_pmf


class TestAliasTableConstruction:
    def test_exact_reconstruction_bit_for_bit(self):
        pmf = [Fraction(1, 6), Fraction(1, 2), Fraction(1, 3)]
        table = AliasTable(pmf)
        assert table.exact_thresholds is not None
        assert table.cell_probabilities() == pmf

    def test_exact_reconstruction_geometric_rows(self):
        """Every row of G_{n,alpha} is encoded exactly, caps included."""
        for n, alpha in [(4, Fraction(1, 3)), (9, Fraction(2, 3))]:
            matrix = geometric_matrix(n, alpha)
            for i in range(n + 1):
                row = list(matrix[i])
                reconstructed = AliasTable(row).cell_probabilities()
                assert reconstructed == row
                # Interior cells follow the unbounded two-sided law; the
                # boundary cells fold its tails (Definition 4).
                for r in range(1, n):
                    assert reconstructed[r] == two_sided_geometric_pmf(
                        alpha, r - i
                    )
                for r in (0, n):
                    assert (
                        reconstructed[r]
                        == alpha ** abs(r - i) / (1 + alpha)
                    )

    def test_tail_cap_mass_accounts_for_whole_line(self):
        """Cap cells hold exactly the mass clipped from outside [0, n]."""
        n, alpha = 5, Fraction(1, 4)
        row = list(geometric_matrix(n, alpha)[2])
        reconstructed = AliasTable(row).cell_probabilities()
        low_tail = sum(
            two_sided_geometric_pmf(alpha, z - 2) for z in range(-40, 1)
        )
        low_exact = alpha**2 / (1 + alpha)
        assert abs(low_tail - low_exact) < Fraction(1, 10**20)
        assert reconstructed[0] == low_exact
        assert sum(reconstructed) == 1

    def test_float_regime_has_no_exact_thresholds(self):
        table = AliasTable([0.25, 0.25, 0.5])
        assert table.exact_thresholds is None
        with pytest.raises(ValidationError):
            table.cell_probabilities()

    def test_degenerate_point_mass(self):
        table = AliasTable([Fraction(0), Fraction(1), Fraction(0)])
        assert table.cell_probabilities() == [0, 1, 0]
        draws = table.sample(np.random.default_rng(0), 500)
        assert (draws == 1).all()

    def test_single_outcome(self):
        table = AliasTable([Fraction(1)])
        assert table.sample(np.random.default_rng(0)) == 0

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            AliasTable([])

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            AliasTable([Fraction(3, 2), Fraction(-1, 2)])

    def test_rejects_exact_mass_off_one(self):
        with pytest.raises(ValidationError):
            AliasTable([Fraction(1, 2), Fraction(1, 3)])

    def test_rejects_float_mass_off_one(self):
        with pytest.raises(ValidationError):
            AliasTable([0.5, 0.2])

    def test_sample_range_and_reproducibility(self):
        table = AliasTable(list(geometric_matrix(6, Fraction(1, 2))[3]))
        a = table.sample(np.random.default_rng(42), 2000)
        b = table.sample(np.random.default_rng(42), 2000)
        assert (a == b).all()
        assert a.min() >= 0 and a.max() <= 6

    def test_negative_sample_size_rejected(self):
        table = AliasTable([Fraction(1)])
        with pytest.raises(ValidationError):
            table.sample(np.random.default_rng(0), -1)


class TestFromParts:
    def test_roundtrip_preserves_exact_content(self):
        original = AliasTable(list(geometric_matrix(5, Fraction(1, 3))[2]))
        rebuilt = AliasTable.from_parts(
            original.exact_thresholds, list(original.alias)
        )
        assert rebuilt.cell_probabilities() == (
            original.cell_probabilities()
        )

    def test_rejects_out_of_range_threshold(self):
        with pytest.raises(ValidationError):
            AliasTable.from_parts([Fraction(3, 2)], [0])

    def test_rejects_out_of_range_alias(self):
        with pytest.raises(ValidationError):
            AliasTable.from_parts([Fraction(1), Fraction(1)], [0, 5])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError):
            AliasTable.from_parts([Fraction(1)], [0, 0])


class TestRowAliasSampler:
    def test_from_matrix_exact(self):
        sampler = RowAliasSampler.from_matrix(
            geometric_matrix(4, Fraction(1, 3))
        )
        assert sampler.is_exact()
        assert sampler.n == 4 and sampler.size == 5

    def test_batch_matches_per_row_distribution(self):
        n, alpha = 6, Fraction(1, 2)
        matrix = geometric_matrix(n, alpha)
        sampler = RowAliasSampler.from_matrix(matrix)
        rng = np.random.default_rng(3)
        rows = np.full(200_000, 2, dtype=np.int64)
        draws = sampler.sample(rows, rng)
        freq = np.bincount(draws, minlength=n + 1) / rows.size
        expected = [float(p) for p in matrix[2]]
        assert np.allclose(freq, expected, atol=0.01)

    def test_chi_square_smoke(self):
        """Seeded goodness-of-fit of alias draws against the exact pmf."""
        n, alpha = 7, Fraction(1, 3)
        matrix = geometric_matrix(n, alpha)
        sampler = RowAliasSampler.from_matrix(matrix)
        rng = np.random.default_rng(99)
        total = 150_000
        for i in (0, 3, n):
            draws = sampler.sample(
                np.full(total, i, dtype=np.int64), rng
            )
            observed = np.bincount(draws, minlength=n + 1)
            expected = np.array([float(p) for p in matrix[i]]) * total
            chi2 = ((observed - expected) ** 2 / expected).sum()
            # dof = n; this limit sits ~10 sigma out (p < 1e-6).
            assert chi2 < n + 10.0 * np.sqrt(2.0 * n)

    def test_heterogeneous_rows_one_tick(self):
        n, alpha = 5, Fraction(1, 4)
        sampler = RowAliasSampler.from_matrix(geometric_matrix(n, alpha))
        rows = np.array([0, 5, 2, 3, 1, 4], dtype=np.int64)
        draws = sampler.sample(rows, np.random.default_rng(1))
        assert draws.shape == rows.shape
        assert draws.min() >= 0 and draws.max() <= n

    def test_rejects_out_of_range_rows(self):
        sampler = RowAliasSampler.from_matrix(
            geometric_matrix(3, Fraction(1, 2))
        )
        with pytest.raises(ValidationError):
            sampler.sample(np.array([4]), np.random.default_rng(0))
        with pytest.raises(ValidationError):
            sampler.sample(np.array([-1]), np.random.default_rng(0))

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            RowAliasSampler.from_matrix(np.ones((2, 3)) / 3)

    def test_empty_batch(self):
        sampler = RowAliasSampler.from_matrix(
            geometric_matrix(3, Fraction(1, 2))
        )
        draws = sampler.sample(
            np.empty(0, dtype=np.int64), np.random.default_rng(0)
        )
        assert draws.size == 0


class TestHeterogeneousSampler:
    def _fused(self):
        return HeterogeneousAliasSampler(
            [
                cached_geometric_sampler(3, Fraction(1, 3)),
                cached_geometric_sampler(8, Fraction(1, 2)),
            ]
        )

    def test_mixed_tables_stay_in_range(self):
        fused = self._fused()
        tables = np.array([0, 1, 0, 1, 1], dtype=np.int64)
        rows = np.array([3, 8, 0, 4, 7], dtype=np.int64)
        draws = fused.sample(tables, rows, np.random.default_rng(5))
        limits = np.array([3, 8])[tables]
        assert (draws >= 0).all() and (draws <= limits).all()

    def test_matches_single_sampler_distribution(self):
        fused = self._fused()
        total = 120_000
        tables = np.zeros(total, dtype=np.int64)
        rows = np.full(total, 1, dtype=np.int64)
        draws = fused.sample(tables, rows, np.random.default_rng(8))
        freq = np.bincount(draws, minlength=4) / total
        expected = [
            float(p) for p in geometric_matrix(3, Fraction(1, 3))[1]
        ]
        assert np.allclose(freq, expected, atol=0.01)

    def test_rejects_row_outside_its_table(self):
        fused = self._fused()
        with pytest.raises(ValidationError):
            fused.sample(
                np.array([0]), np.array([8]), np.random.default_rng(0)
            )

    def test_rejects_bad_table_index(self):
        fused = self._fused()
        with pytest.raises(ValidationError):
            fused.sample(
                np.array([2]), np.array([0]), np.random.default_rng(0)
            )

    def test_empty_batch(self):
        fused = self._fused()
        out = fused.sample(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.random.default_rng(0),
        )
        assert out.size == 0

    def test_rejects_empty_sampler_list(self):
        with pytest.raises(ValidationError):
            HeterogeneousAliasSampler([])


class TestSamplerCache:
    def setup_method(self):
        clear_alias_cache()

    def teardown_method(self):
        clear_alias_cache()

    def test_memoizes_per_key(self):
        a = cached_geometric_sampler(4, Fraction(1, 3))
        b = cached_geometric_sampler(4, Fraction(1, 3))
        c = cached_geometric_sampler(4, 1 / 3)
        assert a is b
        assert c is not a
        assert a.is_exact() and not c.is_exact()

    def test_bounded_eviction_is_insertion_ordered(self):
        first = cached_geometric_sampler(2, Fraction(1, 3))
        for k in range(_SAMPLER_CACHE_ENTRIES):
            cached_geometric_sampler(2, Fraction(1, k + 4))
        assert len(_SAMPLER_CACHE) == _SAMPLER_CACHE_ENTRIES
        assert cached_geometric_sampler(2, Fraction(1, 3)) is not first

    def test_clear_caches_clears_alias_memo(self):
        cached_geometric_sampler(3, Fraction(1, 2))
        assert _SAMPLER_CACHE
        repro.clear_caches()
        assert not _SAMPLER_CACHE
