"""Tests for the two-sided geometric sampler."""

from fractions import Fraction

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.sampling.geometric import (
    sample_geometric_failures,
    sample_two_sided_geometric,
    two_sided_geometric_pmf,
)


class TestPmf:
    def test_exact_values(self):
        alpha = Fraction(1, 2)
        assert two_sided_geometric_pmf(alpha, 0) == Fraction(1, 3)
        assert two_sided_geometric_pmf(alpha, 1) == Fraction(1, 6)
        assert two_sided_geometric_pmf(alpha, -1) == Fraction(1, 6)

    def test_difference_identity(self):
        """pmf of X1 - X2 (iid geometric failures) == two-sided pmf."""
        alpha = Fraction(1, 3)

        def failures_pmf(k):
            return (1 - alpha) * alpha**k

        for z in range(-4, 5):
            convolution = sum(
                failures_pmf(k) * failures_pmf(k - z) for k in range(max(z, 0), 60)
            )
            direct = two_sided_geometric_pmf(alpha, z)
            assert abs(float(convolution - direct)) < 1e-25

    def test_bad_alpha(self):
        with pytest.raises(ValidationError):
            two_sided_geometric_pmf(1.0, 0)

    def test_vectorized_matches_scalar(self):
        """Array z takes the float fast path; values match the scalar law."""
        alpha = Fraction(1, 3)
        zs = np.arange(-6, 7)
        vectorized = two_sided_geometric_pmf(alpha, zs)
        assert isinstance(vectorized, np.ndarray)
        assert vectorized.shape == zs.shape
        for z, value in zip(zs, vectorized):
            assert value == pytest.approx(
                float(two_sided_geometric_pmf(alpha, int(z))), rel=1e-14
            )

    def test_vectorized_accepts_list_tuple_range(self):
        alpha = 0.5
        expected = two_sided_geometric_pmf(alpha, np.array([0, 1, 2]))
        for z in ([0, 1, 2], (0, 1, 2), range(3)):
            assert np.allclose(two_sided_geometric_pmf(alpha, z), expected)

    def test_vectorized_bad_alpha(self):
        with pytest.raises(ValidationError):
            two_sided_geometric_pmf(1.0, np.array([0, 1]))

    def test_scalar_exact_path_still_fraction(self):
        value = two_sided_geometric_pmf(Fraction(1, 2), 1)
        assert isinstance(value, Fraction)
        assert value == Fraction(1, 6)


class TestFailureSampler:
    def test_support_nonnegative(self, rng):
        draws = sample_geometric_failures(0.5, rng, 1000)
        assert (draws >= 0).all()

    def test_mean_matches_alpha_over_one_minus_alpha(self, rng):
        alpha = 0.4
        draws = sample_geometric_failures(alpha, rng, 100000)
        assert draws.mean() == pytest.approx(alpha / (1 - alpha), abs=0.02)

    def test_scalar_draw(self, rng):
        value = sample_geometric_failures(0.5, rng)
        assert int(value) >= 0

    def test_negative_size_rejected(self, rng):
        with pytest.raises(ValidationError):
            sample_geometric_failures(0.5, rng, -1)


class TestTwoSidedSampler:
    def test_scalar_type(self, rng):
        assert isinstance(sample_two_sided_geometric(0.5, rng), int)

    def test_array_shape(self, rng):
        draws = sample_two_sided_geometric(0.5, rng, 100)
        assert draws.shape == (100,)

    def test_symmetry(self, rng):
        draws = sample_two_sided_geometric(0.5, rng, 100000)
        assert abs(float(np.mean(draws))) < 0.02

    def test_empirical_pmf_matches_exact(self, rng):
        alpha = 0.3
        draws = sample_two_sided_geometric(alpha, rng, 100000)
        for z in range(-2, 3):
            expected = two_sided_geometric_pmf(alpha, z)
            assert np.mean(draws == z) == pytest.approx(expected, abs=0.01)

    def test_variance_formula(self, rng):
        """Var Z = 2 alpha / (1 - alpha)^2 for the two-sided geometric."""
        alpha = 0.5
        draws = sample_two_sided_geometric(alpha, rng, 200000)
        expected = 2 * alpha / (1 - alpha) ** 2
        assert np.var(draws) == pytest.approx(expected, rel=0.05)
