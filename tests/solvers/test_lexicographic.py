"""Tests for the two-stage lexicographic solve."""

from fractions import Fraction

import pytest

from repro.exceptions import SolverError
from repro.solvers.base import LinearProgram
from repro.solvers.lexicographic import solve_lexicographic
from repro.solvers.scipy_backend import ScipyBackend
from repro.solvers.simplex import ExactSimplexBackend


def degenerate_program():
    """min x0 with a fat optimal face over (x1, x2)."""
    lp = LinearProgram(3)
    lp.set_objective([(0, 1)])
    lp.add_eq([(0, 1)], 1)          # pins the primary objective
    lp.add_eq([(1, 1), (2, 1)], 2)  # x1 + x2 == 2, both free on the face
    return lp


class TestLexicographic:
    def test_primary_value_preserved_exact(self):
        lp = degenerate_program()
        primary, refined = solve_lexicographic(
            lp, [(1, 1)], ExactSimplexBackend()
        )
        assert primary.objective == 1
        # Refined still satisfies the pinned primary objective.
        assert refined.values[0] == 1

    def test_secondary_minimized_on_face(self):
        lp = degenerate_program()
        _, refined = solve_lexicographic(
            lp, [(1, 1)], ExactSimplexBackend()
        )
        # Minimizing x1 over the face drives it to 0 (x2 takes the 2).
        assert refined.values[1] == 0
        assert refined.values[2] == 2

    def test_secondary_direction_matters(self):
        lp = degenerate_program()
        _, refined = solve_lexicographic(
            lp, [(2, 1)], ExactSimplexBackend()
        )
        assert refined.values[2] == 0
        assert refined.values[1] == 2

    def test_float_backend_with_slack(self):
        lp = degenerate_program()
        _, refined = solve_lexicographic(
            lp, [(1, 1)], ScipyBackend(), slack=1e-9
        )
        assert refined.values[1] == pytest.approx(0.0, abs=1e-7)

    def test_empty_primary_objective_rejected(self):
        lp = LinearProgram(1)
        lp.add_le([(0, 1)], 1)
        with pytest.raises(SolverError):
            solve_lexicographic(lp, [(0, 1)], ExactSimplexBackend())

    def test_exact_fraction_face(self):
        # Face defined by a fractional pin.
        lp = LinearProgram(2)
        lp.set_objective([(0, 1), (1, 1)])
        lp.add_le([(0, -1), (1, -1)], -Fraction(1, 3))
        _, refined = solve_lexicographic(
            lp, [(0, 1)], ExactSimplexBackend()
        )
        assert refined.values[0] == 0
        assert refined.values[1] == Fraction(1, 3)
