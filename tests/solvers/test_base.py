"""Tests for the backend-neutral LP description."""

from fractions import Fraction

import pytest

from repro.exceptions import ValidationError
from repro.solvers.base import LinearProgram, choose_backend
from repro.solvers.hybrid import HybridBackend
from repro.solvers.scipy_backend import ScipyBackend
from repro.solvers.simplex import ExactSimplexBackend


class TestLinearProgram:
    def test_requires_positive_vars(self):
        with pytest.raises(ValidationError):
            LinearProgram(0)

    def test_rejects_out_of_range_variable(self):
        lp = LinearProgram(2)
        with pytest.raises(ValidationError):
            lp.add_le([(2, 1)], 0)

    def test_zero_coefficients_dropped(self):
        lp = LinearProgram(2)
        lp.set_objective([(0, 0), (1, 3)])
        assert lp.objective_terms == [(1, 3)]

    def test_constraint_bookkeeping(self):
        lp = LinearProgram(3)
        lp.add_le([(0, 1)], 5)
        lp.add_eq([(1, 1), (2, 1)], 1)
        assert lp.num_constraints() == 2
        assert len(lp.le_constraints) == 1
        assert len(lp.eq_constraints) == 1

    def test_evaluate_objective(self):
        lp = LinearProgram(2)
        lp.set_objective([(0, 2), (1, Fraction(1, 2))])
        assert lp.evaluate_objective([3, 4]) == 8

    def test_copy_is_independent(self):
        lp = LinearProgram(2)
        lp.add_le([(0, 1)], 1)
        clone = lp.copy()
        clone.add_le([(1, 1)], 1)
        assert lp.num_constraints() == 1
        assert clone.num_constraints() == 2

    def test_repr(self):
        lp = LinearProgram(2)
        assert "vars=2" in repr(lp)


class TestChooseBackend:
    def test_exact_selects_certify_first_hybrid(self):
        assert isinstance(choose_backend(exact=True), HybridBackend)

    def test_float_selects_scipy(self):
        assert isinstance(choose_backend(exact=False), ScipyBackend)

    def test_huge_exact_program_routes_to_hybrid(self):
        """Large exact programs are serviceable now — no hard error."""
        backend = choose_backend(exact=True, size_hint=10_000)
        assert isinstance(backend, HybridBackend)


class TestConstraintViews:
    def test_views_are_cached_and_cheap(self):
        lp = LinearProgram(3)
        lp.add_le([(0, 1), (1, 2)], 5)
        first = lp.le_constraints
        assert lp.le_constraints is first  # cached, no per-access copy
        lp.add_le([(2, 1)], 1)
        assert lp.le_constraints is not first  # invalidated on mutation
        assert len(lp.le_constraints) == 2

    def test_terms_are_immutable_tuples(self):
        lp = LinearProgram(2)
        lp.add_eq([(0, 1), (1, 1)], 1)
        (terms, rhs), = lp.eq_constraints
        assert isinstance(terms, tuple)
        assert rhs == 1
        with pytest.raises(TypeError):
            terms[0] = (1, 2)

    def test_copy_shares_term_tuples_but_not_lists(self):
        lp = LinearProgram(2)
        lp.add_le([(0, 1)], 1)
        clone = lp.copy()
        assert clone.le_constraints[0][0] is lp.le_constraints[0][0]
        clone.add_le([(1, 1)], 2)
        assert lp.num_constraints() == 1

    def test_extend_blocks_skip_revalidation(self):
        lp = LinearProgram(2)
        block = ((((0, 1), (1, 1)), 1),)
        lp.extend_le(block)
        lp.extend_eq(block)
        assert lp.num_constraints() == 2
        assert lp.le_constraints[0][0] == ((0, 1), (1, 1))
