"""Tests for the certify-first hybrid exact backend."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.geometric import GeometricMechanism
from repro.core.interaction import optimal_interaction
from repro.core.optimal import optimal_mechanism
from repro.exceptions import (
    InfeasibleProgramError,
    UnboundedProgramError,
)
from repro.losses import AbsoluteLoss, SquaredLoss
from repro.solvers.base import LinearProgram
from repro.solvers.hybrid import HybridBackend, _sparse_exact_solve
from repro.solvers.simplex import ExactSimplexBackend


def both_solve(lp):
    return HybridBackend().solve(lp), ExactSimplexBackend().solve(lp)


class TestAgainstExactSimplex:
    def test_simple_program_identical(self):
        lp = LinearProgram(2)
        lp.set_objective([(0, -1), (1, -2)])
        lp.add_le([(0, 1), (1, 1)], 4)
        lp.add_le([(1, 1)], 3)
        hybrid, simplex = both_solve(lp)
        assert hybrid.values == simplex.values
        assert hybrid.objective == simplex.objective
        assert all(isinstance(v, Fraction) for v in hybrid.values)

    def test_fractional_vertex_is_exact(self):
        lp = LinearProgram(1)
        lp.set_objective([(0, 1)])
        lp.add_le([(0, -3)], -1)  # 3x >= 1
        solution = HybridBackend().solve(lp)
        assert solution.values == [Fraction(1, 3)]

    def test_table1_instance_bit_identical(self):
        """Acceptance: the paper's Table 1 LP, solved both ways."""
        hybrid_backend = HybridBackend()
        hybrid = optimal_mechanism(
            3, Fraction(1, 4), AbsoluteLoss(), backend=hybrid_backend,
            exact=True,
        )
        simplex = optimal_mechanism(
            3, Fraction(1, 4), AbsoluteLoss(),
            backend=ExactSimplexBackend(), exact=True,
        )
        assert hybrid_backend.last_path == "certified"
        assert hybrid.loss == simplex.loss == Fraction(168, 415)
        assert (hybrid.mechanism.matrix == simplex.mechanism.matrix).all()

    def test_table1_interaction_kernel_bit_identical(self):
        deployed = GeometricMechanism(3, Fraction(1, 4))
        hybrid = optimal_interaction(
            deployed, AbsoluteLoss(), backend=HybridBackend(), exact=True
        )
        simplex = optimal_interaction(
            deployed, AbsoluteLoss(), backend=ExactSimplexBackend(),
            exact=True,
        )
        assert hybrid.loss == simplex.loss
        assert (hybrid.kernel == simplex.kernel).all()

    @pytest.mark.parametrize(
        "n,alpha",
        [(3, Fraction(1, 4)), (4, Fraction(1, 3)), (5, Fraction(1, 2))],
    )
    def test_table2_parameter_grid_bit_identical(self, n, alpha):
        """Acceptance: Table 2 (n, alpha) instances across backends."""
        hybrid = optimal_mechanism(
            n, alpha, AbsoluteLoss(), backend=HybridBackend(), exact=True
        )
        simplex = optimal_mechanism(
            n, alpha, AbsoluteLoss(), backend=ExactSimplexBackend(),
            exact=True,
        )
        assert hybrid.loss == simplex.loss
        assert (hybrid.mechanism.matrix == simplex.mechanism.matrix).all()

    def test_squared_loss_certifies(self):
        backend = HybridBackend()
        result = optimal_mechanism(
            4, Fraction(2, 5), SquaredLoss(), backend=backend, exact=True
        )
        assert backend.last_path == "certified"
        reference = optimal_mechanism(
            4, Fraction(2, 5), SquaredLoss(),
            backend=ExactSimplexBackend(), exact=True,
        )
        assert result.loss == reference.loss


class TestFailureModes:
    def test_infeasible_diagnosed_exactly(self):
        lp = LinearProgram(1)
        lp.set_objective([(0, 1)])
        lp.add_eq([(0, 1)], 3)
        lp.add_eq([(0, 1)], 4)
        with pytest.raises(InfeasibleProgramError):
            HybridBackend().solve(lp)

    def test_unbounded_diagnosed_exactly(self):
        lp = LinearProgram(1)
        lp.set_objective([(0, -1)])
        lp.add_le([(0, -1)], 0)
        with pytest.raises(UnboundedProgramError):
            HybridBackend().solve(lp)

    def test_degenerate_certification_failure_falls_back(self):
        """Regression: a wrecked float stage must not corrupt results.

        The float identification is forced to hand back a garbage basis
        (worst case for certification); the exact fallback must still
        produce the true optimum, bit-identical to the cold simplex.
        """
        backend = HybridBackend()
        backend._float_backend = _LyingFloatBackend()
        result = optimal_mechanism(
            3, Fraction(1, 4), AbsoluteLoss(), backend=backend, exact=True
        )
        assert backend.last_path == "fallback"
        assert result.loss == Fraction(168, 415)
        reference = optimal_mechanism(
            3, Fraction(1, 4), AbsoluteLoss(),
            backend=ExactSimplexBackend(), exact=True,
        )
        assert (result.mechanism.matrix == reference.mechanism.matrix).all()

    def test_fallback_backend_is_labelled(self):
        backend = HybridBackend()
        backend._float_backend = _LyingFloatBackend()
        # Unique optimum (x0, x1) = (0, 2): the lying float stage ranks
        # x0 first, so its basis fails dual certification and the solve
        # must route through (and label) the exact-simplex fallback.
        lp = LinearProgram(2)
        lp.set_objective([(0, 1)])
        lp.add_eq([(0, 1), (1, 1)], 2)
        solution = backend.solve(lp)
        assert "fallback" in solution.backend
        assert solution.objective == 0
        assert solution.values == [0, 2]


class _LyingFloatBackend:
    """Float stage that reports optimal with nonsense values."""

    def solve_raw(self, program):
        class Result:
            status = 0
            x = np.full(program.num_vars, 0.123)
            slack = np.full(len(program.le_constraints), 0.456)
            ineqlin = None
            eqlin = None

        return Result()


class TestWarmStart:
    def test_warm_start_from_optimal_basis_matches_cold(self):
        """Feeding the certified basis back into the simplex is a no-op
        pivot-wise and must reproduce an optimal solution."""
        lp = LinearProgram(3)
        lp.set_objective([(0, -3), (1, -2), (2, -1)])
        lp.add_le([(0, 1), (1, 1), (2, 1)], 1)
        lp.add_le([(0, 1), (1, 1)], 1)
        lp.add_le([(0, 1)], 1)
        cold = ExactSimplexBackend().solve(lp)
        # Optimal vertex x = (1, 0, 0): basic columns are x0 plus the
        # slacks of the two constraints that stay slack-free... pivot
        # structure aside, any optimal basis must reproduce objective -3.
        warm = ExactSimplexBackend().solve(
            lp, initial_basis=[0, 4, 5]
        )
        assert warm.objective == cold.objective == -3

    def test_unusable_warm_basis_is_ignored(self):
        lp = LinearProgram(2)
        lp.set_objective([(0, 1), (1, 1)])
        lp.add_eq([(0, 1), (1, 1)], 2)
        lp.add_eq([(0, 1), (1, -1)], 0)
        solution = ExactSimplexBackend().solve(lp, initial_basis=[0, 0])
        assert solution.values == [1, 1]


class TestSparseExactSolve:
    def test_chain_system(self):
        # x0 = 2 x1, x1 = 2 x2, x0 + x1 + x2 = 7 -> (4, 2, 1).
        rows = [
            {0: Fraction(1), 1: Fraction(-2)},
            {1: Fraction(1), 2: Fraction(-2)},
            {0: Fraction(1), 1: Fraction(1), 2: Fraction(1)},
        ]
        rhs = [Fraction(0), Fraction(0), Fraction(7)]
        solution = _sparse_exact_solve(rows, rhs)
        assert solution == {0: Fraction(4), 1: Fraction(2), 2: Fraction(1)}

    def test_singular_system_raises(self):
        from repro.exceptions import ValidationError

        rows = [
            {0: Fraction(1), 1: Fraction(1)},
            {0: Fraction(2), 1: Fraction(2)},
        ]
        with pytest.raises(ValidationError):
            _sparse_exact_solve(rows, [Fraction(1), Fraction(3)])
