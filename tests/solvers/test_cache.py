"""Tests for the persistent content-addressed solve cache."""

import json
from fractions import Fraction

import pytest

from repro.exceptions import ValidationError
from repro.solvers.base import LinearProgram, LPSolution
from repro.solvers.cache import (
    SolveCache,
    canonical_key,
    canonical_terms,
    resolve_cache,
    set_default_cache,
)
from repro.solvers.hybrid import HybridBackend


def small_program(rhs=1):
    program = LinearProgram(2)
    program.set_objective([(0, 1), (1, Fraction(1, 3))])
    program.add_le([(0, 1), (1, 1)], rhs)
    program.add_eq([(0, 1)], Fraction(1, 2))
    return program


class TestCanonicalKey:
    def test_same_content_same_key(self):
        assert canonical_key(small_program()) == canonical_key(small_program())

    def test_rhs_changes_key(self):
        assert canonical_key(small_program(1)) != canonical_key(
            small_program(2)
        )

    def test_objective_changes_key(self):
        changed = small_program()
        changed.set_objective([(0, 2)])
        assert canonical_key(changed) != canonical_key(small_program())

    def test_exact_and_float_regimes_distinct(self):
        """``Fraction(1, 2) == 0.5`` but the programs are different."""
        exact = LinearProgram(1)
        exact.add_le([(0, Fraction(1, 2))], 1)
        floaty = LinearProgram(1)
        floaty.add_le([(0, 0.5)], 1)
        assert canonical_key(exact) != canonical_key(floaty)

    def test_variant_changes_key(self):
        program = small_program()
        assert canonical_key(program) != canonical_key(
            program, variant="refine:" + canonical_terms([(0, 1)])
        )

    def test_unserializable_coefficient_raises(self):
        program = LinearProgram(1)
        program.add_le([(0, "nonsense")], 1)
        with pytest.raises(ValidationError):
            canonical_key(program)


class TestSolveCache:
    def test_round_trip_exact_values(self, tmp_path):
        cache = SolveCache(tmp_path)
        program = small_program()
        solution = LPSolution(
            values=[Fraction(1, 2), Fraction(0)],
            objective=Fraction(1, 2),
            backend="test",
        )
        cache.put(program, solution)
        fresh = SolveCache(tmp_path)  # cold in-memory layer: disk only
        loaded = fresh.get(program)
        assert loaded is not None
        assert loaded.values == solution.values
        assert all(isinstance(v, Fraction) for v in loaded.values)
        assert loaded.objective == Fraction(1, 2)
        assert loaded.backend == "test"

    def test_round_trip_float_values_lossless(self, tmp_path):
        cache = SolveCache(tmp_path)
        program = small_program()
        value = 0.1 + 0.2  # not exactly representable in decimal
        cache.put(program, LPSolution([value, 0.0], value, "float"))
        loaded = SolveCache(tmp_path).get(program)
        assert loaded.values[0] == value  # bit-identical, not approximate

    def test_miss_then_hit_stats(self, tmp_path):
        cache = SolveCache(tmp_path)
        program = small_program()
        assert cache.get(program) is None
        cache.put(program, LPSolution([Fraction(1)], Fraction(1), "b"))
        assert cache.get(program) is not None
        assert cache.stats == {"hits": 1, "misses": 1, "stores": 1}

    def test_get_returns_independent_copy(self, tmp_path):
        cache = SolveCache(tmp_path)
        program = small_program()
        cache.put(program, LPSolution([Fraction(1)], Fraction(1), "b"))
        first = cache.get(program)
        first.values.append("mutated")
        second = cache.get(program)
        assert second.values == [Fraction(1)]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SolveCache(tmp_path)
        program = small_program()
        cache.put(program, LPSolution([Fraction(1)], Fraction(1), "b"))
        [entry] = list(tmp_path.rglob("*.json"))
        entry.write_text("{not json")
        fresh = SolveCache(tmp_path)
        assert fresh.get(program) is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = SolveCache(tmp_path)
        program = small_program()
        cache.put(program, LPSolution([Fraction(1)], Fraction(1), "b"))
        [entry] = list(tmp_path.rglob("*.json"))
        payload = json.loads(entry.read_text())
        payload["version"] = 9999
        entry.write_text(json.dumps(payload))
        assert SolveCache(tmp_path).get(program) is None

    def test_directory_created_lazily(self, tmp_path):
        target = tmp_path / "sub" / "cache"
        cache = SolveCache(target)
        assert not target.exists()  # get alone must not create it
        assert cache.get(small_program()) is None
        assert not target.exists()
        cache.put(small_program(), LPSolution([Fraction(1)], Fraction(1), "b"))
        assert target.exists()

    def test_clear_memory_keeps_disk(self, tmp_path):
        cache = SolveCache(tmp_path)
        program = small_program()
        cache.put(program, LPSolution([Fraction(1)], Fraction(1), "b"))
        cache.clear_memory()
        assert cache.get(program) is not None  # reloaded from disk

    def test_cached_solution_matches_real_solve(self, tmp_path):
        from repro.core.optimal import build_optimal_lp
        from repro.losses import AbsoluteLoss
        from repro.losses.base import loss_matrix

        program, _ = build_optimal_lp(
            3, Fraction(1, 4), loss_matrix(AbsoluteLoss(), 3), [0, 1, 2, 3]
        )
        solved = HybridBackend().solve(program)
        cache = SolveCache(tmp_path)
        cache.put(program, solved)
        loaded = SolveCache(tmp_path).get(program)
        assert loaded.values == solved.values
        assert loaded.objective == solved.objective == Fraction(168, 415)


class TestResolveCache:
    def test_false_disables(self):
        assert resolve_cache(False) is None

    def test_instance_passthrough(self, tmp_path):
        cache = SolveCache(tmp_path)
        assert resolve_cache(cache) is cache

    def test_path_builds_cache(self, tmp_path):
        resolved = resolve_cache(tmp_path / "store")
        assert isinstance(resolved, SolveCache)

    def test_default_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        set_default_cache(None)  # forget any resolved default
        try:
            import repro.solvers.cache as cache_module

            cache_module._default_cache = cache_module._UNSET
            resolved = resolve_cache(None)
            assert isinstance(resolved, SolveCache)
            assert resolved.path == tmp_path
        finally:
            cache_module._default_cache = cache_module._UNSET

    def test_set_default_cache(self, tmp_path):
        import repro.solvers.cache as cache_module

        try:
            set_default_cache(tmp_path)
            assert resolve_cache(None).path == tmp_path
            set_default_cache(None)
            assert resolve_cache(None) is None
        finally:
            cache_module._default_cache = cache_module._UNSET
