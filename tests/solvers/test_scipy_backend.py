"""Tests for the scipy/HiGHS backend."""

import pytest

from repro.exceptions import InfeasibleProgramError, UnboundedProgramError
from repro.solvers.base import LinearProgram
from repro.solvers.scipy_backend import ScipyBackend


def solve(lp):
    return ScipyBackend().solve(lp)


class TestScipyBackend:
    def test_simple_program(self):
        lp = LinearProgram(2)
        lp.set_objective([(0, 1), (1, 2)])
        lp.add_eq([(0, 1), (1, 1)], 1)
        solution = solve(lp)
        assert solution.objective == pytest.approx(1.0)
        assert solution.values[0] == pytest.approx(1.0)

    def test_backend_name_recorded(self):
        lp = LinearProgram(1)
        lp.set_objective([(0, 1)])
        lp.add_le([(0, 1)], 1)
        assert solve(lp).backend == "scipy-highs"

    def test_infeasible(self):
        lp = LinearProgram(1)
        lp.set_objective([(0, 1)])
        lp.add_eq([(0, 1)], 1)
        lp.add_eq([(0, 1)], 2)
        with pytest.raises(InfeasibleProgramError):
            solve(lp)

    def test_unbounded(self):
        lp = LinearProgram(1)
        lp.set_objective([(0, -1)])
        with pytest.raises(UnboundedProgramError):
            solve(lp)

    def test_handles_fraction_coefficients(self):
        from fractions import Fraction

        lp = LinearProgram(1)
        lp.set_objective([(0, Fraction(1, 3))])
        lp.add_le([(0, -1)], -Fraction(3, 2))
        solution = solve(lp)
        assert solution.objective == pytest.approx(0.5)

    def test_larger_sparse_program(self):
        # min sum x_i with n cover constraints x_i >= i/100.
        size = 200
        lp = LinearProgram(size)
        lp.set_objective([(i, 1) for i in range(size)])
        for i in range(size):
            lp.add_le([(i, -1)], -i / 100)
        solution = solve(lp)
        expected = sum(i / 100 for i in range(size))
        assert solution.objective == pytest.approx(expected)
