"""Tests for the exact Fraction simplex."""

from fractions import Fraction

import pytest

from repro.exceptions import (
    InfeasibleProgramError,
    UnboundedProgramError,
)
from repro.solvers.base import LinearProgram
from repro.solvers.scipy_backend import ScipyBackend
from repro.solvers.simplex import ExactSimplexBackend


def solve(lp):
    return ExactSimplexBackend().solve(lp)


class TestBasicPrograms:
    def test_trivial_minimum_at_zero(self):
        lp = LinearProgram(1)
        lp.set_objective([(0, 1)])
        lp.add_le([(0, 1)], 10)
        solution = solve(lp)
        assert solution.objective == 0
        assert solution.values == [0]

    def test_maximization_via_negation(self):
        # max x s.t. x <= 7  ==  min -x.
        lp = LinearProgram(1)
        lp.set_objective([(0, -1)])
        lp.add_le([(0, 1)], 7)
        solution = solve(lp)
        assert solution.objective == -7
        assert solution.values == [7]

    def test_two_variable_vertex(self):
        # min -(x + 2y) s.t. x + y <= 4, y <= 3.
        lp = LinearProgram(2)
        lp.set_objective([(0, -1), (1, -2)])
        lp.add_le([(0, 1), (1, 1)], 4)
        lp.add_le([(1, 1)], 3)
        solution = solve(lp)
        assert solution.values == [1, 3]
        assert solution.objective == -7

    def test_equality_constraints(self):
        # min x + y s.t. x + y == 2, x - y == 0.
        lp = LinearProgram(2)
        lp.set_objective([(0, 1), (1, 1)])
        lp.add_eq([(0, 1), (1, 1)], 2)
        lp.add_eq([(0, 1), (1, -1)], 0)
        solution = solve(lp)
        assert solution.values == [1, 1]
        assert solution.objective == 2

    def test_exact_fraction_answer(self):
        # min x s.t. 3x >= 1  ->  x = 1/3 exactly.
        lp = LinearProgram(1)
        lp.set_objective([(0, 1)])
        lp.add_le([(0, -3)], -1)
        solution = solve(lp)
        assert solution.values == [Fraction(1, 3)]

    def test_negative_rhs_handled(self):
        # x >= 5 encoded as -x <= -5.
        lp = LinearProgram(1)
        lp.set_objective([(0, 1)])
        lp.add_le([(0, -1)], -5)
        assert solve(lp).objective == 5

    def test_redundant_equality_rows(self):
        lp = LinearProgram(2)
        lp.set_objective([(0, 1), (1, 1)])
        lp.add_eq([(0, 1), (1, 1)], 2)
        lp.add_eq([(0, 2), (1, 2)], 4)  # same hyperplane
        solution = solve(lp)
        assert solution.objective == 2


class TestFailureModes:
    def test_infeasible_detected(self):
        lp = LinearProgram(1)
        lp.set_objective([(0, 1)])
        lp.add_eq([(0, 1)], 3)
        lp.add_eq([(0, 1)], 4)
        with pytest.raises(InfeasibleProgramError):
            solve(lp)

    def test_infeasible_inequalities(self):
        lp = LinearProgram(1)
        lp.set_objective([(0, 1)])
        lp.add_le([(0, 1)], 1)
        lp.add_le([(0, -1)], -2)  # x >= 2 contradicts x <= 1
        with pytest.raises(InfeasibleProgramError):
            solve(lp)

    def test_unbounded_detected(self):
        lp = LinearProgram(1)
        lp.set_objective([(0, -1)])
        lp.add_le([(0, -1)], 0)  # x >= 0 only
        with pytest.raises(UnboundedProgramError):
            solve(lp)


class TestDegeneracy:
    def test_blands_rule_terminates_on_degenerate_program(self):
        # Multiple constraints active at the optimum (degenerate vertex).
        lp = LinearProgram(3)
        lp.set_objective([(0, -3), (1, -2), (2, -1)])
        lp.add_le([(0, 1), (1, 1), (2, 1)], 1)
        lp.add_le([(0, 1), (1, 1)], 1)
        lp.add_le([(0, 1)], 1)
        solution = solve(lp)
        assert solution.objective == -3
        assert solution.values[0] == 1

    def test_probability_simplex_program(self):
        # min sum(c_i x_i) over the probability simplex: picks min cost.
        lp = LinearProgram(4)
        costs = [Fraction(3), Fraction(1, 2), Fraction(2), Fraction(5)]
        lp.set_objective(list(enumerate(costs)))
        lp.add_eq([(i, 1) for i in range(4)], 1)
        solution = solve(lp)
        assert solution.objective == Fraction(1, 2)
        assert solution.values[1] == 1


class TestAgreementWithScipy:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_programs_agree(self, seed):
        """Exact and float backends find the same optimum value."""
        import numpy as np

        rng = np.random.default_rng(seed)
        num_vars = 5
        lp = LinearProgram(num_vars)
        lp.set_objective(
            [(i, Fraction(int(rng.integers(1, 10)), 7)) for i in range(num_vars)]
        )
        # Random cover constraints keep the program feasible and bounded.
        for _ in range(4):
            terms = [
                (i, Fraction(int(rng.integers(-3, 6)), 3))
                for i in range(num_vars)
            ]
            lp.add_le([(v, -c) for v, c in terms], -Fraction(1))
        lp.add_eq([(i, 1) for i in range(num_vars)], 3)
        try:
            exact = ExactSimplexBackend().solve(lp)
        except InfeasibleProgramError:
            with pytest.raises(InfeasibleProgramError):
                ScipyBackend().solve(lp)
            return
        approx = ScipyBackend().solve(lp)
        assert float(exact.objective) == pytest.approx(
            approx.objective, abs=1e-7
        )
