"""Tests for stochastic-matrix utilities, incl. the Poole group fact."""

from fractions import Fraction

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.linalg.rational import RationalMatrix
from repro.linalg.stochastic import (
    is_generalized_stochastic,
    is_row_stochastic,
    random_stochastic_matrix,
    row_sums,
)


class TestPredicates:
    def test_row_stochastic_float(self):
        m = np.array([[0.5, 0.5], [0.2, 0.8]])
        assert is_row_stochastic(m)

    def test_row_stochastic_exact(self):
        m = RationalMatrix([[Fraction(1, 2), Fraction(1, 2)], [0, 1]])
        assert is_row_stochastic(m)

    def test_negative_entry_fails_stochastic(self):
        m = np.array([[1.5, -0.5], [0.5, 0.5]])
        assert not is_row_stochastic(m)
        assert is_generalized_stochastic(m)

    def test_bad_row_sum_fails_both(self):
        m = np.array([[0.5, 0.4], [0.5, 0.5]])
        assert not is_row_stochastic(m)
        assert not is_generalized_stochastic(m)

    def test_generalized_exact(self):
        m = RationalMatrix([[2, -1], [Fraction(3, 2), Fraction(-1, 2)]])
        assert is_generalized_stochastic(m)
        assert not is_row_stochastic(m)

    def test_non_2d_rejected(self):
        assert not is_row_stochastic(np.array([0.5, 0.5]))

    def test_row_sums_exact(self):
        m = RationalMatrix([[Fraction(1, 3), Fraction(2, 3)]])
        assert row_sums(m) == [1]

    def test_row_sums_float(self):
        sums = row_sums(np.array([[0.25, 0.75], [1.0, 0.0]]))
        assert sums == [1.0, 1.0]

    def test_row_sums_rejects_1d(self):
        with pytest.raises(ValidationError):
            row_sums(np.array([1.0]))


class TestStochasticGroup:
    """The Poole (1995) facts Lemma 1 relies on."""

    def test_product_of_generalized_stochastic_is_generalized(self):
        a = RationalMatrix([[2, -1], [Fraction(1, 2), Fraction(1, 2)]])
        b = RationalMatrix([[0, 1], [3, -2]])
        assert is_generalized_stochastic(a)
        assert is_generalized_stochastic(b)
        assert is_generalized_stochastic(a @ b)

    def test_inverse_of_generalized_stochastic_is_generalized(self):
        a = RationalMatrix([[2, -1], [Fraction(1, 2), Fraction(1, 2)]])
        assert is_generalized_stochastic(a.inverse())

    def test_geometric_inverse_is_generalized_stochastic(self, g3_quarter):
        inverse = g3_quarter.to_rational_matrix().inverse()
        assert is_generalized_stochastic(inverse)
        assert not is_row_stochastic(inverse)


class TestRandomStochastic:
    def test_float_is_stochastic(self, rng):
        m = random_stochastic_matrix(5, rng=rng)
        assert m.shape == (5, 5)
        assert is_row_stochastic(m)

    def test_exact_is_stochastic(self, rng):
        m = random_stochastic_matrix(4, rng=rng, exact=True)
        assert m.dtype == object
        assert is_row_stochastic(m)
        assert all(isinstance(entry, Fraction) for entry in m.flat)

    def test_exact_rows_sum_exactly_one(self, rng):
        m = random_stochastic_matrix(3, rng=rng, exact=True)
        for row in m:
            assert sum(row.tolist()) == 1

    def test_deterministic_with_seed(self):
        a = random_stochastic_matrix(3, rng=np.random.default_rng(1))
        b = random_stochastic_matrix(3, rng=np.random.default_rng(1))
        assert np.allclose(a, b)

    def test_bad_size(self):
        with pytest.raises(ValidationError):
            random_stochastic_matrix(0)

    def test_bad_resolution(self):
        with pytest.raises(ValidationError):
            random_stochastic_matrix(10, exact=True, resolution=5)
