"""Tests for exact rational matrices."""

from fractions import Fraction

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.linalg.rational import RationalMatrix


class TestConstruction:
    def test_from_nested_lists(self):
        m = RationalMatrix([[1, 2], [3, 4]])
        assert m.shape == (2, 2)
        assert m[0, 1] == Fraction(2)

    def test_entries_become_fractions(self):
        m = RationalMatrix([[Fraction(1, 3), 1]])
        assert isinstance(m[0, 0], Fraction)
        assert isinstance(m[0, 1], Fraction)

    def test_exact_float_accepted(self):
        m = RationalMatrix([[0.5, 0.25]])
        assert m[0, 0] == Fraction(1, 2)

    def test_inexact_float_rejected(self):
        with pytest.raises(ValidationError):
            RationalMatrix([[0.1]])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            RationalMatrix([])

    def test_ragged_rejected(self):
        with pytest.raises(ValidationError):
            RationalMatrix([[1, 2], [3]])

    def test_from_fractions_trusted_constructor(self):
        rows = [[Fraction(1, 2), Fraction(3)], [Fraction(0), Fraction(1)]]
        m = RationalMatrix.from_fractions(rows)
        assert m == RationalMatrix(rows)
        assert m.determinant() == Fraction(1, 2)

    def test_from_fractions_validates_shape(self):
        with pytest.raises(ValidationError):
            RationalMatrix.from_fractions([])
        with pytest.raises(ValidationError):
            RationalMatrix.from_fractions([[Fraction(1)], []])

    def test_identity(self):
        eye = RationalMatrix.identity(3)
        assert eye.is_identity()
        assert eye.shape == (3, 3)

    def test_identity_bad_size(self):
        with pytest.raises(ValidationError):
            RationalMatrix.identity(0)

    def test_zeros(self):
        z = RationalMatrix.zeros(2, 3)
        assert z.shape == (2, 3)
        assert all(entry == 0 for row in z.rows() for entry in row)

    def test_diagonal(self):
        d = RationalMatrix.diagonal([1, Fraction(1, 2)])
        assert d[0, 0] == 1
        assert d[1, 1] == Fraction(1, 2)
        assert d[0, 1] == 0

    def test_from_numpy(self):
        m = RationalMatrix.from_numpy(np.array([[1, 2], [3, 4]]))
        assert m[1, 0] == 3

    def test_from_numpy_rejects_1d(self):
        with pytest.raises(ValidationError):
            RationalMatrix.from_numpy(np.array([1, 2]))


class TestArithmetic:
    def test_add(self):
        a = RationalMatrix([[1, 2], [3, 4]])
        b = RationalMatrix([[1, 1], [1, 1]])
        assert (a + b)[1, 1] == 5

    def test_sub(self):
        a = RationalMatrix([[1, 2], [3, 4]])
        assert (a - a).is_nonnegative()
        assert (a - a)[0, 0] == 0

    def test_shape_mismatch(self):
        a = RationalMatrix([[1, 2]])
        b = RationalMatrix([[1], [2]])
        with pytest.raises(ValidationError):
            a + b

    def test_scale(self):
        m = RationalMatrix([[1, 2]]).scale(Fraction(1, 2))
        assert m[0, 1] == 1

    def test_scale_column(self):
        m = RationalMatrix([[1, 2], [3, 4]]).scale_column(1, 10)
        assert m[0, 1] == 20
        assert m[0, 0] == 1

    def test_matmul_identity(self):
        m = RationalMatrix([[1, 2], [3, 4]])
        assert m @ RationalMatrix.identity(2) == m

    def test_matmul_known_product(self):
        a = RationalMatrix([[1, 2], [3, 4]])
        b = RationalMatrix([[0, 1], [1, 0]])
        assert (a @ b).rows() == ((2, 1), (4, 3))

    def test_matmul_shape_error(self):
        a = RationalMatrix([[1, 2]])
        with pytest.raises(ValidationError):
            a @ a

    def test_matvec(self):
        m = RationalMatrix([[1, 2], [3, 4]])
        assert m.matvec([1, 1]) == (3, 7)

    def test_matvec_length_error(self):
        with pytest.raises(ValidationError):
            RationalMatrix([[1, 2]]).matvec([1])

    def test_transpose(self):
        m = RationalMatrix([[1, 2], [3, 4]])
        assert m.transpose()[0, 1] == 3

    def test_transpose_involution(self):
        m = RationalMatrix([[1, 2, 3], [4, 5, 6]])
        assert m.transpose().transpose() == m


class TestElimination:
    def test_determinant_2x2(self):
        m = RationalMatrix([[1, 2], [3, 4]])
        assert m.determinant() == -2

    def test_determinant_singular(self):
        m = RationalMatrix([[1, 2], [2, 4]])
        assert m.determinant() == 0

    def test_determinant_requires_square(self):
        with pytest.raises(ValidationError):
            RationalMatrix([[1, 2]]).determinant()

    def test_determinant_permutation_sign(self):
        m = RationalMatrix([[0, 1], [1, 0]])
        assert m.determinant() == -1

    def test_determinant_exact_fractions(self):
        m = RationalMatrix(
            [[Fraction(1, 3), Fraction(1, 7)], [Fraction(1, 11), Fraction(1, 13)]]
        )
        expected = Fraction(1, 3) * Fraction(1, 13) - Fraction(1, 7) * Fraction(
            1, 11
        )
        assert m.determinant() == expected

    def test_inverse_round_trip(self):
        m = RationalMatrix([[2, 1], [1, 1]])
        assert (m @ m.inverse()).is_identity()
        assert (m.inverse() @ m).is_identity()

    def test_inverse_singular_raises(self):
        with pytest.raises(ValidationError):
            RationalMatrix([[1, 1], [1, 1]]).inverse()

    def test_inverse_requires_square(self):
        with pytest.raises(ValidationError):
            RationalMatrix([[1, 2]]).inverse()

    def test_solve(self):
        m = RationalMatrix([[2, 0], [0, 4]])
        assert m.solve([1, 1]) == (Fraction(1, 2), Fraction(1, 4))

    def test_solve_matches_inverse(self):
        m = RationalMatrix([[3, 1], [1, 2]])
        rhs = [5, 5]
        by_solve = m.solve(rhs)
        by_inverse = m.inverse().matvec(rhs)
        assert by_solve == by_inverse

    def test_solve_singular_raises(self):
        with pytest.raises(ValidationError):
            RationalMatrix([[1, 1], [1, 1]]).solve([1, 2])

    def test_solve_wrong_length(self):
        with pytest.raises(ValidationError):
            RationalMatrix([[1, 0], [0, 1]]).solve([1])

    def test_replace_column(self):
        m = RationalMatrix([[1, 2], [3, 4]])
        replaced = m.replace_column(0, [9, 9])
        assert replaced.column(0) == (9, 9)
        assert replaced.column(1) == (2, 4)

    def test_replace_column_length_error(self):
        with pytest.raises(ValidationError):
            RationalMatrix([[1, 2], [3, 4]]).replace_column(0, [1])

    def test_cramer_consistency(self):
        """Cramer's rule: solve == det(G(i, b))/det(G) per coordinate."""
        g = RationalMatrix([[2, 1, 0], [1, 3, 1], [0, 1, 4]])
        rhs = [1, 2, 3]
        solution = g.solve(rhs)
        det = g.determinant()
        for i in range(3):
            assert solution[i] == g.replace_column(i, rhs).determinant() / det


class TestConversions:
    def test_row_sums(self):
        m = RationalMatrix([[Fraction(1, 2), Fraction(1, 2)], [1, 0]])
        assert m.row_sums() == (1, 1)

    def test_to_numpy_object(self):
        arr = RationalMatrix([[Fraction(1, 3)]]).to_numpy()
        assert arr.dtype == object
        assert arr[0, 0] == Fraction(1, 3)

    def test_to_float(self):
        arr = RationalMatrix([[Fraction(1, 4)]]).to_float()
        assert arr[0, 0] == 0.25

    def test_equality_and_hash(self):
        a = RationalMatrix([[1, 2]])
        b = RationalMatrix([[1, 2]])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert RationalMatrix([[1]]) != RationalMatrix([[2]])

    def test_repr_contains_entries(self):
        assert "1/2" in repr(RationalMatrix([[Fraction(1, 2)]]))
