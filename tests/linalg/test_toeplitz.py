"""Tests for the KMS (G') matrix closed forms — Lemma 1 machinery."""

from fractions import Fraction

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.linalg.rational import RationalMatrix
from repro.linalg.toeplitz import (
    kms_determinant,
    kms_inverse,
    kms_matrix,
    tridiagonal_premultiply,
)

ALPHAS = [Fraction(1, 5), Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)]
SIZES = [2, 3, 4, 5, 6]


class TestKmsMatrix:
    def test_entries_are_powers(self):
        k = kms_matrix(4, Fraction(1, 2))
        for i in range(4):
            for j in range(4):
                assert k[i, j] == Fraction(1, 2) ** abs(i - j)

    def test_symmetric(self):
        k = kms_matrix(5, Fraction(1, 3))
        assert k == k.transpose()

    def test_unit_diagonal(self):
        k = kms_matrix(3, Fraction(2, 5))
        assert all(k[i, i] == 1 for i in range(3))

    def test_size_one(self):
        assert kms_matrix(1, Fraction(1, 2)).rows() == ((1,),)

    def test_bad_size(self):
        with pytest.raises(ValidationError):
            kms_matrix(0, Fraction(1, 2))

    def test_bad_alpha(self):
        with pytest.raises(ValidationError):
            kms_matrix(3, Fraction(3, 2))


class TestDeterminant:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_closed_form_matches_elimination(self, size, alpha):
        """Lemma 1: det G' = (1 - alpha^2)^(m-1), verified exactly."""
        assert kms_matrix(size, alpha).determinant() == kms_determinant(
            size, alpha
        )

    def test_positive(self):
        for alpha in ALPHAS:
            assert kms_determinant(4, alpha) > 0

    def test_size_one_is_one(self):
        assert kms_determinant(1, Fraction(1, 2)) == 1

    def test_formula_value(self):
        # (1 - 1/4)^2 = 9/16 for size 3, alpha = 1/2.
        assert kms_determinant(3, Fraction(1, 2)) == Fraction(9, 16)


class TestInverse:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_closed_form_is_inverse(self, size, alpha):
        k = kms_matrix(size, alpha)
        assert (k @ kms_inverse(size, alpha)).is_identity()

    def test_tridiagonal_shape(self):
        inv = kms_inverse(5, Fraction(1, 3))
        for i in range(5):
            for j in range(5):
                if abs(i - j) > 1:
                    assert inv[i, j] == 0

    def test_corner_entries(self):
        alpha = Fraction(1, 2)
        inv = kms_inverse(4, alpha)
        scale = 1 / (1 - alpha**2)
        assert inv[0, 0] == scale
        assert inv[3, 3] == scale
        assert inv[1, 1] == (1 + alpha**2) * scale
        assert inv[0, 1] == -alpha * scale

    def test_size_one(self):
        assert kms_inverse(1, Fraction(1, 2)).is_identity()


class TestTridiagonalPremultiply:
    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_matches_explicit_inverse_exact(self, alpha):
        size = 4
        matrix = RationalMatrix(
            [[Fraction(i + j + 1, 7) for j in range(size)] for i in range(size)]
        )
        expected = kms_inverse(size, alpha) @ matrix
        got = tridiagonal_premultiply(alpha, matrix.to_numpy())
        assert (got == expected.to_numpy()).all()

    def test_matches_explicit_inverse_float(self, rng):
        size = 5
        alpha = 0.37
        matrix = rng.random((size, size))
        inv = kms_inverse(size, Fraction(37, 100)).to_float()
        expected = inv @ matrix
        got = tridiagonal_premultiply(alpha, matrix)
        assert np.allclose(got, expected, atol=1e-12)

    def test_size_one_identity(self):
        matrix = np.array([[2.0]])
        assert tridiagonal_premultiply(0.5, matrix)[0, 0] == 2.0

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            tridiagonal_premultiply(0.5, np.array([1.0, 2.0]))
