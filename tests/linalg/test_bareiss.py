"""Cross-validation of the fraction-free (Bareiss) elimination paths.

The reference implementations below are the naive Fraction-arithmetic
eliminations the library used before switching
:class:`~repro.linalg.rational.RationalMatrix` to fraction-free integer
elimination; the new paths must agree exactly on random rational
matrices.
"""

import random
from fractions import Fraction

import pytest

from repro.exceptions import ValidationError
from repro.linalg.rational import RationalMatrix
from repro.linalg.toeplitz import kms_determinant, kms_inverse, kms_matrix


def reference_determinant(matrix: RationalMatrix) -> Fraction:
    size = matrix.shape[0]
    work = [list(row) for row in matrix.rows()]
    det = Fraction(1)
    for col in range(size):
        pivot_row = next(
            (r for r in range(col, size) if work[r][col] != 0), None
        )
        if pivot_row is None:
            return Fraction(0)
        if pivot_row != col:
            work[col], work[pivot_row] = work[pivot_row], work[col]
            det = -det
        pivot = work[col][col]
        det *= pivot
        for r in range(col + 1, size):
            if work[r][col] == 0:
                continue
            factor = work[r][col] / pivot
            work[r] = [
                entry - factor * top for entry, top in zip(work[r], work[col])
            ]
    return det


def reference_inverse(matrix: RationalMatrix) -> RationalMatrix:
    size = matrix.shape[0]
    work = [
        list(row) + [Fraction(int(i == j)) for j in range(size)]
        for i, row in enumerate(matrix.rows())
    ]
    for col in range(size):
        pivot_row = next(
            (r for r in range(col, size) if work[r][col] != 0), None
        )
        if pivot_row is None:
            raise ValidationError("singular")
        if pivot_row != col:
            work[col], work[pivot_row] = work[pivot_row], work[col]
        pivot = work[col][col]
        work[col] = [entry / pivot for entry in work[col]]
        for r in range(size):
            if r == col or work[r][col] == 0:
                continue
            factor = work[r][col]
            work[r] = [
                entry - factor * top for entry, top in zip(work[r], work[col])
            ]
    return RationalMatrix([row[size:] for row in work])


def random_rational_matrix(rng: random.Random, size: int) -> RationalMatrix:
    return RationalMatrix(
        [
            [
                Fraction(rng.randint(-12, 12), rng.randint(1, 9))
                for _ in range(size)
            ]
            for _ in range(size)
        ]
    )


class TestBareissDeterminant:
    def test_agrees_with_reference_on_random_matrices(self):
        rng = random.Random(20100115)
        for _ in range(120):
            matrix = random_rational_matrix(rng, rng.randint(1, 6))
            assert matrix.determinant() == reference_determinant(matrix)

    def test_singular_matrix_gives_zero(self):
        matrix = RationalMatrix([[1, 2, 3], [2, 4, 6], [0, 1, 1]])
        assert matrix.determinant() == 0

    def test_kms_closed_form(self):
        for size in (1, 2, 4, 8):
            alpha = Fraction(3, 7)
            assert kms_matrix(size, alpha).determinant() == kms_determinant(
                size, alpha
            )

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            RationalMatrix([[1, 2, 3], [4, 5, 6]]).determinant()


class TestBareissInverse:
    def test_agrees_with_reference_on_random_matrices(self):
        rng = random.Random(20090531)
        checked = 0
        while checked < 60:
            matrix = random_rational_matrix(rng, rng.randint(1, 6))
            if matrix.determinant() == 0:
                continue
            assert matrix.inverse() == reference_inverse(matrix)
            checked += 1

    def test_inverse_times_matrix_is_identity(self):
        rng = random.Random(7)
        for _ in range(30):
            matrix = random_rational_matrix(rng, rng.randint(1, 5))
            if matrix.determinant() == 0:
                continue
            assert (matrix @ matrix.inverse()).is_identity()
            assert (matrix.inverse() @ matrix).is_identity()

    def test_kms_tridiagonal_closed_form(self):
        for size in (2, 3, 6):
            alpha = Fraction(1, 4)
            assert kms_matrix(size, alpha).inverse() == kms_inverse(
                size, alpha
            )

    def test_singular_raises(self):
        with pytest.raises(ValidationError):
            RationalMatrix([[1, 2], [2, 4]]).inverse()


class TestBareissSolve:
    def test_solution_satisfies_system(self):
        rng = random.Random(42)
        solved = 0
        while solved < 60:
            size = rng.randint(1, 6)
            matrix = random_rational_matrix(rng, size)
            if matrix.determinant() == 0:
                continue
            rhs = [
                Fraction(rng.randint(-12, 12), rng.randint(1, 9))
                for _ in range(size)
            ]
            solution = matrix.solve(rhs)
            assert matrix.matvec(solution) == tuple(rhs)
            # Cross-check against the inverse route.
            assert solution == matrix.inverse().matvec(rhs)
            solved += 1

    def test_singular_raises(self):
        with pytest.raises(ValidationError):
            RationalMatrix([[1, 1], [1, 1]]).solve([1, 2])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            RationalMatrix([[1, 0], [0, 1]]).solve([1, 2, 3])
