"""Tests for random loss generators used by property tests."""

import numpy as np
import pytest

from repro.exceptions import LossFunctionError
from repro.losses.base import check_monotone
from repro.losses.random import random_monotone_loss, random_nonmonotone_loss


class TestRandomMonotoneLoss:
    def test_always_passes_validation(self, rng):
        for _ in range(20):
            loss = random_monotone_loss(4, rng=rng)
            check_monotone(loss, 4)

    def test_zero_on_diagonal(self, rng):
        loss = random_monotone_loss(5, rng=rng)
        for i in range(6):
            assert loss(i, i) == 0

    def test_shared_profile_mode(self, rng):
        loss = random_monotone_loss(4, rng=rng, per_row=False)
        # Shared profile: loss depends only on the distance.
        assert loss(0, 2) == loss(1, 3) == loss(2, 4)

    def test_deterministic_with_seed(self):
        a = random_monotone_loss(3, rng=np.random.default_rng(5))
        b = random_monotone_loss(3, rng=np.random.default_rng(5))
        assert (a.matrix(3) == b.matrix(3)).all()

    def test_float_mode(self, rng):
        loss = random_monotone_loss(3, rng=rng, exact=False)
        assert isinstance(loss(0, 2), float)

    def test_bad_max_increment(self, rng):
        with pytest.raises(LossFunctionError):
            random_monotone_loss(3, rng=rng, max_increment=0)


class TestRandomNonmonotoneLoss:
    def test_violates_monotonicity(self, rng):
        for _ in range(5):
            loss = random_nonmonotone_loss(4, rng=rng)
            with pytest.raises(LossFunctionError):
                check_monotone(loss, 4)

    def test_zero_on_diagonal(self, rng):
        loss = random_nonmonotone_loss(3, rng=rng)
        for i in range(4):
            assert loss(i, i) == 0

    def test_unvalidated_flag(self, rng):
        assert not random_nonmonotone_loss(3, rng=rng).validated
