"""Tests for tabular losses."""

from fractions import Fraction

import numpy as np
import pytest

from repro.exceptions import LossFunctionError
from repro.losses.matrix import TabularLoss
from repro.losses.standard import AbsoluteLoss


class TestTabularLoss:
    def test_round_trip_from_standard(self):
        table = AbsoluteLoss().matrix(3)
        loss = TabularLoss(table)
        for i in range(4):
            for r in range(4):
                assert loss(i, r) == abs(i - r)

    def test_matrix_returns_copy(self):
        loss = TabularLoss(AbsoluteLoss().matrix(2))
        got = loss.matrix(2)
        got[0, 0] = 99
        assert loss(0, 0) == 0

    def test_matrix_wrong_n_rejected(self):
        loss = TabularLoss(AbsoluteLoss().matrix(2))
        with pytest.raises(LossFunctionError):
            loss.matrix(3)

    def test_out_of_range_arguments(self):
        loss = TabularLoss(AbsoluteLoss().matrix(2))
        with pytest.raises(LossFunctionError):
            loss(3, 0)
        with pytest.raises(LossFunctionError):
            loss(0, 3)

    def test_validates_monotonicity_by_default(self):
        bad = np.array([[0, 2, 1], [1, 0, 1], [1, 2, 0]], dtype=object)
        with pytest.raises(LossFunctionError):
            TabularLoss(bad)

    def test_validation_can_be_disabled(self):
        bad = np.array([[0, 2, 1], [1, 0, 1], [1, 2, 0]], dtype=object)
        loss = TabularLoss(bad, validate_monotone=False)
        assert loss(0, 2) == 1
        assert not loss.validated

    def test_rejects_non_square(self):
        with pytest.raises(LossFunctionError):
            TabularLoss(np.zeros((2, 3)))

    def test_rejects_negative_entries(self):
        bad = np.array([[0, -1], [1, 0]], dtype=object)
        with pytest.raises(LossFunctionError):
            TabularLoss(bad)

    def test_rejects_tiny_table(self):
        with pytest.raises(LossFunctionError):
            TabularLoss(np.zeros((1, 1)))

    def test_source_mutation_does_not_leak(self):
        table = AbsoluteLoss().matrix(2)
        loss = TabularLoss(table)
        table[0, 1] = Fraction(100)
        assert loss(0, 1) == 1

    def test_describe_mentions_validation_state(self):
        loss = TabularLoss(AbsoluteLoss().matrix(2))
        assert "TabularLoss" in loss.describe()
