"""Tests for the loss-function base class and monotonicity validation."""

from fractions import Fraction

import numpy as np
import pytest

from repro.exceptions import LossFunctionError
from repro.losses.base import check_monotone, loss_matrix
from repro.losses.standard import AbsoluteLoss, SquaredLoss, ZeroOneLoss


class TestMatrixConstruction:
    def test_matrix_shape(self):
        assert AbsoluteLoss().matrix(4).shape == (5, 5)

    def test_matrix_entries(self):
        table = SquaredLoss().matrix(3)
        assert table[0, 3] == 9
        assert table[2, 2] == 0

    def test_callable_protocol(self):
        loss = AbsoluteLoss()
        assert loss(1, 4) == loss.loss(1, 4) == 3

    def test_loss_matrix_passthrough(self):
        explicit = np.zeros((3, 3), dtype=object)
        got = loss_matrix(explicit, 2)
        assert got.shape == (3, 3)

    def test_loss_matrix_wrong_shape(self):
        with pytest.raises(LossFunctionError):
            loss_matrix(np.zeros((2, 2)), 3)

    def test_loss_matrix_from_function(self):
        got = loss_matrix(ZeroOneLoss(), 2)
        assert got[0, 0] == 0
        assert got[0, 1] == 1


class TestMonotonicityValidation:
    @pytest.mark.parametrize(
        "loss", [AbsoluteLoss(), SquaredLoss(), ZeroOneLoss()]
    )
    def test_standard_losses_pass(self, loss):
        check_monotone(loss, 5)

    def test_decreasing_in_distance_fails(self):
        table = np.array(
            [[0, 2, 1], [2, 0, 2], [1, 2, 0]], dtype=object
        )
        with pytest.raises(LossFunctionError, match="monotone"):
            check_monotone(table, 2)

    def test_negative_loss_fails(self):
        table = np.array(
            [[0, -1, 2], [1, 0, 1], [2, 1, 0]], dtype=object
        )
        with pytest.raises(LossFunctionError, match="non-negative"):
            check_monotone(table, 2)

    def test_asymmetric_distance_fails_by_default(self):
        # l(1, 0) != l(1, 2): same distance, different loss.
        table = np.array(
            [[0, 1, 2], [5, 0, 1], [2, 1, 0]], dtype=object
        )
        with pytest.raises(LossFunctionError, match="through"):
            check_monotone(table, 2)

    def test_asymmetric_allowed_when_symmetry_not_required(self):
        table = np.array(
            [[0, 1, 2], [5, 0, 1], [2, 1, 0]], dtype=object
        )
        check_monotone(table, 2, require_distance_symmetry=False)

    def test_constant_loss_is_monotone(self):
        table = np.full((3, 3), Fraction(2), dtype=object)
        check_monotone(table, 2)

    def test_describe_default(self):
        assert "AbsoluteLoss" in AbsoluteLoss().describe()
