"""Tests for loss combinators and their monotonicity preservation."""

from fractions import Fraction

import pytest

from repro.exceptions import LossFunctionError
from repro.losses.base import check_monotone
from repro.losses.composite import (
    CappedLoss,
    MaxLoss,
    ScaledLoss,
    ShiftedLoss,
    SumLoss,
    ThresholdLoss,
)
from repro.losses.standard import AbsoluteLoss, SquaredLoss, ZeroOneLoss


class TestScaledLoss:
    def test_values(self):
        loss = ScaledLoss(AbsoluteLoss(), Fraction(1, 2))
        assert loss(0, 4) == 2

    def test_zero_factor_allowed(self):
        assert ScaledLoss(AbsoluteLoss(), 0)(0, 9) == 0

    def test_negative_factor_rejected(self):
        with pytest.raises(LossFunctionError):
            ScaledLoss(AbsoluteLoss(), -1)

    def test_non_loss_base_rejected(self):
        with pytest.raises(LossFunctionError):
            ScaledLoss(lambda i, r: 0, 1)

    def test_monotone(self):
        check_monotone(ScaledLoss(SquaredLoss(), 3), 5)


class TestShiftedLoss:
    def test_values(self):
        loss = ShiftedLoss(ZeroOneLoss(), 2)
        assert loss(1, 1) == 2
        assert loss(1, 2) == 3

    def test_negative_offset_rejected(self):
        with pytest.raises(LossFunctionError):
            ShiftedLoss(ZeroOneLoss(), -1)

    def test_monotone(self):
        check_monotone(ShiftedLoss(AbsoluteLoss(), 1), 4)


class TestCappedLoss:
    def test_saturates(self):
        loss = CappedLoss(SquaredLoss(), 4)
        assert loss(0, 1) == 1
        assert loss(0, 2) == 4
        assert loss(0, 5) == 4

    def test_monotone(self):
        check_monotone(CappedLoss(AbsoluteLoss(), 2), 6)

    def test_negative_cap_rejected(self):
        with pytest.raises(LossFunctionError):
            CappedLoss(AbsoluteLoss(), -3)


class TestMaxAndSum:
    def test_max_values(self):
        loss = MaxLoss([AbsoluteLoss(), ScaledLoss(ZeroOneLoss(), 3)])
        assert loss(0, 1) == 3
        assert loss(0, 5) == 5
        assert loss(2, 2) == 0

    def test_sum_values(self):
        loss = SumLoss([AbsoluteLoss(), SquaredLoss()])
        assert loss(0, 3) == 12

    def test_empty_parts_rejected(self):
        with pytest.raises(LossFunctionError):
            MaxLoss([])
        with pytest.raises(LossFunctionError):
            SumLoss([])

    def test_monotone_combinations(self):
        check_monotone(MaxLoss([AbsoluteLoss(), SquaredLoss()]), 5)
        check_monotone(SumLoss([AbsoluteLoss(), ZeroOneLoss()]), 5)

    def test_describe(self):
        assert "max(" in MaxLoss([AbsoluteLoss()]).describe()


class TestThresholdLoss:
    def test_zero_within_tolerance(self):
        loss = ThresholdLoss(2)
        assert loss(5, 5) == 0
        assert loss(5, 7) == 0
        assert loss(5, 8) == 1

    def test_custom_penalty(self):
        loss = ThresholdLoss(0, penalty=Fraction(7, 2))
        assert loss(0, 1) == Fraction(7, 2)

    def test_tolerance_zero_is_zero_one(self):
        threshold, zero_one = ThresholdLoss(0), ZeroOneLoss()
        for i in range(4):
            for r in range(4):
                assert threshold(i, r) == zero_one(i, r)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(LossFunctionError):
            ThresholdLoss(-1)

    def test_non_integer_tolerance_rejected(self):
        with pytest.raises(LossFunctionError):
            ThresholdLoss(1.5)

    def test_monotone(self):
        check_monotone(ThresholdLoss(1, penalty=5), 6)
