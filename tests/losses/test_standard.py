"""Tests for the paper's named loss functions."""

from fractions import Fraction

import pytest

from repro.exceptions import LossFunctionError
from repro.losses.standard import (
    AbsoluteLoss,
    PowerLoss,
    SquaredLoss,
    ZeroOneLoss,
)


class TestAbsoluteLoss:
    def test_values(self):
        loss = AbsoluteLoss()
        assert loss(0, 0) == 0
        assert loss(0, 5) == 5
        assert loss(5, 0) == 5

    def test_symmetric(self):
        loss = AbsoluteLoss()
        assert loss(2, 7) == loss(7, 2)

    def test_exact_integers(self):
        assert isinstance(AbsoluteLoss()(1, 3), int)


class TestSquaredLoss:
    def test_values(self):
        loss = SquaredLoss()
        assert loss(1, 4) == 9
        assert loss(4, 1) == 9
        assert loss(3, 3) == 0

    def test_dominates_absolute_beyond_one(self):
        squared, absolute = SquaredLoss(), AbsoluteLoss()
        for d in range(2, 10):
            assert squared(0, d) > absolute(0, d)


class TestZeroOneLoss:
    def test_zero_on_diagonal(self):
        loss = ZeroOneLoss()
        assert loss(3, 3) == 0

    def test_one_off_diagonal(self):
        loss = ZeroOneLoss()
        assert loss(3, 4) == 1
        assert loss(0, 9) == 1


class TestPowerLoss:
    def test_power_one_is_absolute(self):
        assert PowerLoss(1)(2, 5) == AbsoluteLoss()(2, 5)

    def test_power_two_is_squared(self):
        assert PowerLoss(2)(2, 5) == SquaredLoss()(2, 5)

    def test_power_zero_is_indicator_like(self):
        # |d|^0 == 1 for every d, including d = 0 (0**0 == 1 in Python).
        loss = PowerLoss(0)
        assert loss(1, 1) == 1
        assert loss(1, 5) == 1

    def test_fractional_power_returns_float(self):
        value = PowerLoss(0.5)(0, 4)
        assert value == pytest.approx(2.0)

    def test_integer_power_stays_exact(self):
        assert isinstance(PowerLoss(3)(0, 2), int)

    def test_fraction_power_with_unit_denominator(self):
        assert PowerLoss(Fraction(2, 1))(0, 3) == 9

    def test_negative_exponent_rejected(self):
        with pytest.raises(LossFunctionError):
            PowerLoss(-1)

    def test_non_number_rejected(self):
        with pytest.raises(LossFunctionError):
            PowerLoss("two")

    def test_describe_mentions_exponent(self):
        assert "3" in PowerLoss(3).describe()
