"""Tests for the metrics primitives and the Prometheus exposition.

Includes a minimal Prometheus text-format parser used to validate every
rendered family: its TYPE line, label escaping, and — for histograms —
bucket monotonicity ending at ``+Inf`` with ``_count`` agreement.
"""

import math
import re
import threading

import pytest

from repro.exceptions import ValidationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_buckets,
    default_registry,
    render_prometheus,
    set_default_registry,
)

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})? "
    r"(?P<value>[^ ]+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def parse_prometheus(text: str) -> dict:
    """A minimal parser of the text exposition format (version 0.0.4).

    Returns ``{family: {"type": str, "samples": [(name, labels, value)]}}``
    where samples attach to the family whose name prefixes theirs
    (histogram ``_bucket``/``_sum``/``_count`` samples attach to the
    histogram family).
    """
    families: dict = {}
    current = None
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            families[name] = {"type": kind, "samples": []}
            current = name
            continue
        assert not line.startswith("#"), f"unknown comment line: {line!r}"
        match = _SAMPLE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name = match.group("name")
        labels = {}
        if match.group("labels"):
            consumed = _LABEL.sub("", match.group("labels"))
            assert set(consumed) <= {","}, (
                f"bad label syntax in {line!r}"
            )
            for key, value in _LABEL.findall(match.group("labels")):
                labels[key] = _unescape(value)
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        elif value_text == "NaN":
            value = math.nan
        else:
            value = float(value_text)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
        assert family == current, (
            f"sample {name} outside its family block ({current})"
        )
        families[family]["samples"].append((name, labels, value))
    return families


def assert_valid_exposition(text: str) -> dict:
    """Every family has a TYPE line; histograms have sane buckets."""
    assert text.endswith("\n")
    families = parse_prometheus(text)
    for name, family in families.items():
        assert family["type"] in ("counter", "gauge", "histogram"), name
        if family["type"] != "histogram":
            continue
        # Group bucket samples per label set (minus ``le``).
        series: dict = {}
        for sample, labels, value in family["samples"]:
            key = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            entry = series.setdefault(
                key, {"buckets": [], "sum": None, "count": None}
            )
            if sample == f"{name}_bucket":
                le = labels["le"]
                entry["buckets"].append(
                    (math.inf if le == "+Inf" else float(le), value)
                )
            elif sample == f"{name}_sum":
                entry["sum"] = value
            elif sample == f"{name}_count":
                entry["count"] = value
        for key, entry in series.items():
            buckets = entry["buckets"]
            assert buckets, (name, key)
            bounds = [b for b, _ in buckets]
            counts = [c for _, c in buckets]
            assert bounds == sorted(bounds), (name, key)
            assert bounds[-1] == math.inf, (name, key)
            assert counts == sorted(counts), (
                f"{name}{key}: cumulative buckets must be monotone"
            )
            assert entry["count"] == counts[-1], (name, key)
            assert entry["sum"] is not None, (name, key)
    return families


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter("events_total", "Events.", ())
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_labeled_children_are_independent_and_cached(self):
        counter = Counter("hits_total", "", ("route",))
        counter.labels("a").inc()
        counter.labels("a").inc()
        counter.labels("b").inc()
        assert counter.labels("a").value == 2
        assert counter.labels("b").value == 1
        assert counter.labels("a") is counter.labels("a")
        assert counter.labels(route="a") is counter.labels("a")

    def test_label_arity_and_keywords_validated(self):
        counter = Counter("hits_total", "", ("route", "status"))
        with pytest.raises(ValidationError, match="label"):
            counter.labels("only-one")
        with pytest.raises(ValidationError, match="missing label"):
            counter.labels(route="a")
        with pytest.raises(ValidationError, match="not both"):
            counter.labels("a", status="b")

    def test_gauge_set_and_inc(self):
        gauge = Gauge("level", "", ())
        gauge.set(7)
        gauge.inc(-2)
        assert gauge.value == 5.0

    def test_invalid_names_rejected(self):
        for bad in ("", "2fast", "dash-ed", "sp ace"):
            with pytest.raises(ValidationError, match="invalid metric"):
                Counter(bad, "", ())
        with pytest.raises(ValidationError, match="invalid metric"):
            Counter("fine", "", ("bad-label",))


class TestHistogram:
    def test_quantiles_upper_bound_within_one_bucket(self):
        histogram = Histogram("lat", "", (), buckets=None)
        values = [1e-6 * (1.08 ** i) for i in range(200)]
        for value in values:
            histogram.observe(value)
        exact = sorted(values)[max(0, math.ceil(0.99 * len(values)) - 1)]
        p99 = histogram.quantile(0.99)
        assert exact <= p99 <= exact * 2.0  # LATENCY_BUCKET_GROWTH

    def test_quantile_edge_cases(self):
        histogram = Histogram("lat", "", (), buckets=(1.0, 2.0))
        assert histogram.quantile(0.5) is None  # empty
        histogram.observe(0.5)
        assert histogram.quantile(0.0) == 1.0
        histogram.observe(99.0)  # overflow bucket
        assert histogram.quantile(1.0) == math.inf
        with pytest.raises(ValidationError, match="quantile"):
            histogram.quantile(1.5)

    def test_buckets_must_increase(self):
        with pytest.raises(ValidationError, match="increasing"):
            Histogram("lat", "", (), buckets=(1.0, 1.0))
        with pytest.raises(ValidationError, match="bucket"):
            Histogram("lat", "", (), buckets=())

    def test_default_buckets_span_micro_to_seconds(self):
        bounds = default_latency_buckets()
        assert bounds[0] == 1e-6
        assert bounds[-1] > 8.0
        assert all(b < c for b, c in zip(bounds, bounds[1:]))


class TestRegistry:
    def test_families_are_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "help", labels=("x",))
        again = registry.counter("a_total", "other", labels=("x",))
        assert first is again

    def test_kind_and_label_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "", labels=("x",))
        with pytest.raises(ValidationError, match="counter"):
            registry.gauge("a_total")
        with pytest.raises(ValidationError, match="labels"):
            registry.counter("a_total", "", labels=("y",))

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", labels=("k",)).labels("v").inc(3)
        registry.histogram("h", "", buckets=(1.0, 2.0)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["c_total"]["series"]["v"] == 3
        h = snapshot["h"]["series"][""]
        assert h["count"] == 1 and h["p50"] == 1.0

    def test_collectors_run_at_scrape_time_only(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("level")
        calls = []
        registry.register_collector(lambda: (calls.append(1), gauge.set(len(calls)))[0])
        assert calls == []
        registry.render()
        registry.snapshot()
        assert len(calls) == 2
        assert gauge.value == 2.0

    def test_default_registry_swap_restores(self):
        mine = MetricsRegistry()
        previous = set_default_registry(mine)
        try:
            assert default_registry() is mine
        finally:
            set_default_registry(previous)
        assert default_registry() is previous


class TestExposition:
    def make_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        requests = registry.counter(
            "demo_requests_total", "Requests.", labels=("route", "status")
        )
        requests.labels("publish", "200").inc(7)
        requests.labels("publish", "429").inc()
        registry.gauge("demo_level", "A level.").set(1.5)
        latency = registry.histogram(
            "demo_latency_seconds", "Latency.", labels=("key",)
        )
        for i in range(50):
            latency.labels("abc").observe(1e-5 * (i + 1))
        return registry

    def test_every_family_validates(self):
        families = assert_valid_exposition(self.make_registry().render())
        assert families["demo_requests_total"]["type"] == "counter"
        assert families["demo_level"]["type"] == "gauge"
        assert families["demo_latency_seconds"]["type"] == "histogram"
        samples = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in families["demo_requests_total"][
                "samples"
            ]
        }
        assert samples[
            (
                "demo_requests_total",
                (("route", "publish"), ("status", "200")),
            )
        ] == 7

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        tricky = 'quo"te\\slash\nnewline'
        registry.counter("esc_total", "", labels=("who",)).labels(
            tricky
        ).inc()
        rendered = registry.render()
        assert '\\"' in rendered and "\\\\" in rendered and "\\n" in rendered
        families = parse_prometheus(rendered)
        ((_, labels, value),) = families["esc_total"]["samples"]
        assert labels["who"] == tricky
        assert value == 1

    def test_help_newline_escaped(self):
        rendered = render_prometheus(
            [Counter("c_total", "line one\nline two", ())]
        )
        assert "# HELP c_total line one\\nline two" in rendered

    def test_special_values_render(self):
        registry = MetricsRegistry()
        registry.gauge("g_inf").set(math.inf)
        registry.gauge("g_nan").set(math.nan)
        rendered = registry.render()
        assert "g_inf +Inf" in rendered
        assert "g_nan NaN" in rendered

    def test_concurrent_scrapes_stay_consistent(self):
        """Scrapes racing a writer always see a valid exposition."""
        registry = MetricsRegistry()
        counter = registry.counter("race_total", "", labels=("k",))
        latency = registry.histogram("race_seconds", "")
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            while not stop.is_set():
                counter.labels(str(i % 7)).inc()
                latency.observe(1e-6 * (i % 100 + 1))
                i += 1

        def scraper():
            try:
                for _ in range(50):
                    assert_valid_exposition(registry.render())
            except Exception as err:  # pragma: no cover - failure path
                errors.append(err)

        writer_thread = threading.Thread(target=writer, daemon=True)
        scrapers = [threading.Thread(target=scraper) for _ in range(4)]
        writer_thread.start()
        for thread in scrapers:
            thread.start()
        for thread in scrapers:
            thread.join()
        stop.set()
        writer_thread.join(timeout=5)
        assert not errors
