"""Tests for budget burn-rate rows (live books and WAL directories)."""

from fractions import Fraction

import pytest

from repro.obs.budget import (
    burn_rows_from_book,
    burn_rows_from_dir,
    floor_proximity,
    remaining_charges,
    spent_fraction,
)
from repro.release.durable_ledger import DurableLedger, MemoryLedgerBook


class TestSpentFraction:
    def test_fresh_book_is_zero(self):
        assert spent_fraction(Fraction(1), Fraction(1, 8)) == 0.0

    def test_at_floor_is_one(self):
        assert spent_fraction(Fraction(1, 8), Fraction(1, 8)) == 1.0

    def test_epsilon_fraction_midpoint(self):
        # One of three identical 1/2-charges spent: a third of epsilon.
        assert spent_fraction(
            Fraction(1, 2), Fraction(1, 8)
        ) == pytest.approx(1 / 3)

    def test_no_floor_means_no_burn(self):
        assert spent_fraction(Fraction(1, 2), Fraction(0)) == 0.0
        assert spent_fraction(Fraction(1, 2), None) == 0.0


class TestRemainingCharges:
    def test_exact_boundary(self):
        # cum * (1/2)^k >= 1/8 admits exactly k = 2 from cum = 1/2.
        assert remaining_charges(
            Fraction(1, 2), Fraction(1, 8), Fraction(1, 2)
        ) == 2
        assert remaining_charges(
            Fraction(1, 8), Fraction(1, 8), Fraction(1, 2)
        ) == 0

    def test_unbounded_and_unknown_alpha(self):
        assert remaining_charges(Fraction(1, 2), Fraction(0), Fraction(1, 2)) is None
        assert remaining_charges(Fraction(1, 2), Fraction(1, 8), None) is None
        assert remaining_charges(Fraction(1, 2), Fraction(1, 8), 1) is None

    def test_already_below_floor(self):
        assert remaining_charges(
            Fraction(1, 16), Fraction(1, 8), Fraction(1, 2)
        ) == 0

    def test_exact_far_from_floor(self):
        # Thousands of charges out: float logs alone would wobble at the
        # boundary; the Fraction walk must land exactly.
        floor = Fraction(1, 2) ** 5000
        k = remaining_charges(Fraction(1), floor, Fraction(1, 2))
        assert k == 5000


class TestBurnRows:
    def test_rows_sorted_most_burned_first(self):
        book = MemoryLedgerBook(floor=Fraction(1, 16))
        for _ in range(3):
            book.charge("hot", Fraction(1, 2))
        book.charge("cold", Fraction(1, 2))
        rows = burn_rows_from_book(book)
        assert [row.user for row in rows] == ["hot", "cold"]
        hot, cold = rows
        assert hot.releases == 3
        assert hot.cumulative_alpha == Fraction(1, 8)
        assert hot.remaining_charges == 1
        assert hot.spent_fraction == pytest.approx(0.75)
        assert cold.remaining_charges == 3
        assert not hot.at_floor

    def test_row_to_dict_is_json_friendly(self):
        book = MemoryLedgerBook(floor=Fraction(1, 4))
        book.charge("u", Fraction(1, 2))
        (row,) = burn_rows_from_book(book)
        data = row.to_dict()
        assert data["cumulative_alpha"] == "1/2"
        assert data["floor"] == "1/4"
        assert data["last_alpha"] == "1/2"
        assert data["remaining_charges"] == 1

    def test_rows_from_dir_match_recovery(self, tmp_path):
        ledger = DurableLedger(tmp_path / "led", floor=Fraction(1, 8))
        ledger.charge("alice", Fraction(1, 2))
        ledger.charge("alice", Fraction(1, 2))
        ledger.close()
        rows = burn_rows_from_dir(tmp_path / "led")
        (alice,) = rows
        assert alice.cumulative_alpha == Fraction(1, 4)
        assert alice.remaining_charges == 1
        assert alice.last_alpha == Fraction(1, 2)

    def test_recovered_snapshot_uses_geometric_mean_alpha(self, tmp_path):
        ledger = DurableLedger(tmp_path / "led", floor=Fraction(1, 64))
        ledger.charge("u", Fraction(1, 2))
        ledger.charge("u", Fraction(1, 8))
        ledger.compact()
        ledger.close()
        # After compaction the reopened book only has a snapshot entry:
        # last_alpha falls back to the geometric mean (1/16)^(1/2) = 1/4.
        (row,) = burn_rows_from_dir(tmp_path / "led")
        assert row.cumulative_alpha == Fraction(1, 16)
        assert row.last_alpha == pytest.approx(0.25)
        assert row.remaining_charges == 1


class TestFloorProximity:
    def test_counts_are_cumulative_in_k(self):
        book = MemoryLedgerBook(floor=Fraction(1, 16))
        for _ in range(3):
            book.charge("a", Fraction(1, 2))  # 1 left
        book.charge("b", Fraction(1, 2))  # 3 left
        counts = floor_proximity(burn_rows_from_book(book))
        assert counts == {1: 1, 2: 1, 4: 2, 8: 2}

    def test_unbounded_rows_never_counted(self):
        book = MemoryLedgerBook(floor=Fraction(0))
        book.charge("a", Fraction(1, 2))
        assert floor_proximity(burn_rows_from_book(book)) == {
            1: 0, 2: 0, 4: 0, 8: 0
        }
