"""Tests for span tracing: propagation, broadcast, ring and JSONL sinks."""

import json

import pytest

from repro.exceptions import ValidationError
from repro.obs.tracing import NOOP_SPAN, Tracer


class TestSampling:
    def test_rate_zero_never_samples(self):
        tracer = Tracer(0.0)
        assert all(tracer.sample() is None for _ in range(50))

    def test_rate_one_always_samples_with_unique_ids(self):
        tracer = Tracer(1.0)
        contexts = [tracer.sample() for _ in range(10)]
        assert all(ctx is not None for ctx in contexts)
        assert len({ctx.trace_id for ctx in contexts}) == 10

    def test_rate_is_validated(self):
        with pytest.raises(ValidationError, match="rate"):
            Tracer(1.5)

    def test_seeded_sampling_is_deterministic(self):
        picks = [
            [Tracer(0.5, seed=7).sample() is not None for _ in range(20)]
            for _ in range(2)
        ]
        assert picks[0] == picks[1]


class TestSpans:
    def test_span_without_context_is_the_noop_singleton(self):
        tracer = Tracer(1.0)
        assert tracer.span("anything") is NOOP_SPAN
        with tracer.span("anything") as span:
            span.set(extra=1)  # no-op, no error
        assert tracer.emitted == 0

    def test_nested_spans_share_trace_and_parent_chain(self):
        tracer = Tracer(1.0)
        ctx = tracer.sample()
        token = tracer.activate(ctx)
        try:
            with tracer.span("outer"):
                with tracer.span("inner", step=2):
                    pass
        finally:
            tracer.deactivate(token)
        inner, outer = tracer.recent(2)  # newest first: outer closed last
        assert {outer["name"], inner["name"]} == {"outer", "inner"}
        outer, inner = (
            (outer, inner) if outer["name"] == "outer" else (inner, outer)
        )
        assert outer["trace"] == inner["trace"] == ctx.trace_id
        assert outer["parent"] is None
        assert inner["parent"] == outer["span"]
        assert inner["attrs"] == {"step": 2}
        assert inner["dur_ms"] >= 0.0

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer(1.0)
        token = tracer.activate(tracer.sample())
        try:
            with pytest.raises(RuntimeError):
                with tracer.span("boom"):
                    raise RuntimeError("x")
        finally:
            tracer.deactivate(token)
        (record,) = tracer.recent(1)
        assert record["attrs"]["error"] == "RuntimeError"

    def test_batch_spans_broadcast_to_every_traced_request(self):
        tracer = Tracer(1.0)
        contexts = [tracer.sample() for _ in range(3)]
        token = tracer.activate_batch(contexts)
        try:
            with tracer.span("batch.flush", size=3):
                pass
        finally:
            tracer.deactivate_batch(token)
        records = tracer.recent(10, name="batch.flush")
        assert len(records) == 3
        assert {r["trace"] for r in records} == {
            ctx.trace_id for ctx in contexts
        }
        # One shared span id across the broadcast.
        assert len({r["span"] for r in records}) == 1

    def test_request_context_wins_over_batch(self):
        tracer = Tracer(1.0)
        request = tracer.sample()
        batch_token = tracer.activate_batch([tracer.sample()])
        token = tracer.activate(request)
        try:
            with tracer.span("step"):
                pass
        finally:
            tracer.deactivate(token)
            tracer.deactivate_batch(batch_token)
        (record,) = tracer.recent(1)
        assert record["trace"] == request.trace_id

    def test_event_bypasses_sampling(self):
        tracer = Tracer(0.0)
        record = tracer.event("audit.finding", flagged=True)
        assert record["dur_ms"] == 0.0
        assert record["attrs"] == {"flagged": True}
        assert tracer.recent(1)[0]["name"] == "audit.finding"


class TestSinks:
    def test_ring_is_bounded_and_newest_first(self):
        tracer = Tracer(0.0, ring=4)
        for i in range(10):
            tracer.event("e", i=i)
        records = tracer.recent(100)
        assert [r["attrs"]["i"] for r in records] == [9, 8, 7, 6]
        assert tracer.emitted == 10

    def test_recent_filters_by_name_and_trace(self):
        tracer = Tracer(1.0)
        ctx = tracer.sample()
        token = tracer.activate(ctx)
        try:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        finally:
            tracer.deactivate(token)
        tracer.event("a")  # different trace
        assert len(tracer.recent(10, name="a")) == 2
        assert len(tracer.recent(10, name="a", trace=ctx.trace_id)) == 1
        assert tracer.recent(10, name="zzz") == []

    def test_jsonl_written_flushed_and_closed(self, tmp_path):
        with Tracer(0.0, tmp_path / "traces") as tracer:
            for i in range(3):
                tracer.event("e", i=i)
            tracer.flush()
            lines = (
                (tmp_path / "traces" / "trace.jsonl")
                .read_text()
                .strip()
                .splitlines()
            )
            assert len(lines) == 3
            parsed = [json.loads(line) for line in lines]
            assert [p["attrs"]["i"] for p in parsed] == [0, 1, 2]
            assert set(parsed[0]) == {
                "trace", "span", "parent", "name", "ts", "dur_ms", "attrs"
            }
        # close() flushed the remainder and is idempotent.
        tracer.close()

    def test_no_directory_means_no_file(self, tmp_path):
        tracer = Tracer(0.0)
        tracer.event("e")
        tracer.close()
        assert list(tmp_path.iterdir()) == []

    def test_non_json_attrs_are_stringified(self, tmp_path):
        from fractions import Fraction

        tracer = Tracer(0.0, tmp_path)
        tracer.event("e", alpha=Fraction(1, 2))
        tracer.close()
        (line,) = (tmp_path / "trace.jsonl").read_text().splitlines()
        assert json.loads(line)["attrs"]["alpha"] == "1/2"
