"""Shared fixtures for the test-suite."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.core.geometric import GeometricMechanism


@pytest.fixture(autouse=True)
def _no_ambient_solve_cache(monkeypatch):
    """Keep a developer's ``REPRO_CACHE_DIR`` out of the test-suite.

    Tests exercise the persistent solve cache only through explicit
    ``solve_cache=``/``cache_dir=`` arguments; an ambient default would
    make solve counts and backend provenance nondeterministic.
    """
    import repro.solvers.cache as solve_cache_module

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.setattr(
        solve_cache_module, "_default_cache", solve_cache_module._UNSET
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(20100115)  # the paper's arXiv date


@pytest.fixture
def alpha_quarter() -> Fraction:
    return Fraction(1, 4)


@pytest.fixture
def alpha_half() -> Fraction:
    return Fraction(1, 2)


@pytest.fixture
def g3_quarter() -> GeometricMechanism:
    """The paper's Table 1 geometric mechanism ``G_{3,1/4}``."""
    return GeometricMechanism(3, Fraction(1, 4))


@pytest.fixture
def g3_half() -> GeometricMechanism:
    """The Appendix B geometric mechanism ``G_{3,1/2}``."""
    return GeometricMechanism(3, Fraction(1, 2))


SMALL_ALPHAS = [Fraction(1, 5), Fraction(1, 4), Fraction(1, 2), Fraction(2, 3)]
SMALL_SIZES = [1, 2, 3, 4]
