"""Tests for the top-level public API surface."""

from fractions import Fraction

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        """The docstring's quickstart, as a test."""
        g = repro.GeometricMechanism(3, Fraction(1, 4))
        agent = repro.MinimaxAgent(repro.AbsoluteLoss(), None, n=3)
        interaction = agent.best_interaction(g, exact=True)
        bespoke = agent.bespoke_mechanism(Fraction(1, 4), exact=True)
        assert interaction.loss == bespoke.loss

    def test_clear_caches_resets_memoization(self):
        from repro.core.geometric import _cached_geometric_mechanism
        from repro.core.optimal import _shared_constraint_blocks

        repro.cached_geometric_mechanism(3, Fraction(1, 2))
        repro.optimal_mechanism(2, Fraction(1, 2), repro.AbsoluteLoss())
        assert _cached_geometric_mechanism.cache_info().currsize > 0
        repro.clear_caches()
        assert _cached_geometric_mechanism.cache_info().currsize == 0
        assert _shared_constraint_blocks.cache_info().currsize == 0
        # Library still functions after a clear.
        result = repro.optimal_mechanism(
            2, Fraction(1, 2), repro.AbsoluteLoss()
        )
        assert result.mechanism.n == 2

    def test_solve_cache_exported(self, tmp_path):
        cache = repro.SolveCache(tmp_path)
        assert cache.stats["hits"] == 0

    def test_exceptions_form_hierarchy(self):
        assert issubclass(repro.NotPrivateError, repro.ReproError)
        assert issubclass(repro.ValidationError, repro.ReproError)
        assert issubclass(repro.ValidationError, ValueError)
        assert issubclass(repro.InfeasibleProgramError, repro.SolverError)

    def test_db_roundtrip_through_top_level(self, rng):
        from repro.db import Attribute, Eq

        schema = repro.Schema([Attribute("sick", "bool")])
        db = repro.Database(
            schema, [{"sick": True}, {"sick": False}, {"sick": True}]
        )
        engine = repro.QueryEngine(db)
        query = repro.CountQuery(Eq("sick", True))
        result = engine.answer_private(query, Fraction(1, 2), rng=rng)
        assert 0 <= result.value <= 3

    def test_doctest_of_package_docstring(self):
        import doctest

        failures, _ = doctest.testmod(repro, verbose=False)
        assert failures == 0
