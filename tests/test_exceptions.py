"""Tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    InfeasibleProgramError,
    LossFunctionError,
    NotDerivableError,
    NotPrivateError,
    NotStochasticError,
    QueryError,
    ReproError,
    SchemaError,
    SideInformationError,
    SolverError,
    UnboundedProgramError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ValidationError,
            NotStochasticError,
            NotPrivateError,
            NotDerivableError,
            SolverError,
            InfeasibleProgramError,
            UnboundedProgramError,
            SchemaError,
            QueryError,
            SideInformationError,
            LossFunctionError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_validation_is_value_error(self):
        assert issubclass(ValidationError, ValueError)
        assert issubclass(SchemaError, ValueError)

    def test_program_errors_are_solver_errors(self):
        assert issubclass(InfeasibleProgramError, SolverError)
        assert issubclass(UnboundedProgramError, SolverError)

    def test_catch_all_boundary(self):
        """One except clause catches everything the library raises."""
        with pytest.raises(ReproError):
            raise SchemaError("bad row")
        with pytest.raises(ReproError):
            raise UnboundedProgramError("unbounded")


class TestWitnessPayloads:
    def test_not_private_witness(self):
        err = NotPrivateError("ratio violated", witness=(2, 3))
        assert err.witness == (2, 3)

    def test_not_derivable_witness(self):
        err = NotDerivableError("condition violated", witness=(1, 1))
        assert err.witness == (1, 1)

    def test_not_stochastic_row(self):
        err = NotStochasticError("bad row", row=4)
        assert err.row == 4

    def test_witness_defaults_none(self):
        assert NotPrivateError("x").witness is None
        assert NotDerivableError("x").witness is None
        assert NotStochasticError("x").row is None
