"""Property-based tests for Theorem 1 — the paper's headline claim.

For *every* monotone loss and side-information set, the loss achieved by
optimally post-processing the geometric mechanism equals the optimum of
the consumer's bespoke LP. Hypothesis drives random consumers through
both exact LP pipelines and requires the gap to be exactly zero.
"""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometric import GeometricMechanism
from repro.core.interaction import optimal_interaction
from repro.core.optimal import optimal_mechanism
from repro.losses.random import random_monotone_loss

alphas = st.fractions(
    min_value=Fraction(1, 8), max_value=Fraction(7, 8), max_denominator=16
)
sizes = st.integers(min_value=1, max_value=3)
seeds = st.integers(min_value=0, max_value=2**31)


@st.composite
def consumers(draw):
    n = draw(sizes)
    alpha = draw(alphas)
    seed = draw(seeds)
    members = draw(
        st.sets(
            st.integers(min_value=0, max_value=n), min_size=1
        )
    )
    return n, alpha, seed, sorted(members)


class TestTheorem1Universality:
    @given(case=consumers())
    @settings(max_examples=30, deadline=None)
    def test_interaction_achieves_bespoke_optimum_exactly(self, case):
        n, alpha, seed, members = case
        loss = random_monotone_loss(
            n, rng=np.random.default_rng(seed), exact=True
        )
        bespoke = optimal_mechanism(n, alpha, loss, members, exact=True)
        interaction = optimal_interaction(
            GeometricMechanism(n, alpha), loss, members, exact=True
        )
        assert interaction.loss == bespoke.loss

    @given(case=consumers())
    @settings(max_examples=15, deadline=None)
    def test_bespoke_optimum_is_derivable_from_geometric(self, case):
        """The other face of Theorem 1: *some* optimal mechanism is
        reachable from G. The interaction-induced optimum is itself a
        G post-processing, so it is trivially derivable — and by
        optimality its loss matches the LP optimum."""
        from repro.core.derivability import is_derivable_from_geometric

        n, alpha, seed, members = case
        loss = random_monotone_loss(
            n, rng=np.random.default_rng(seed), exact=True
        )
        interaction = optimal_interaction(
            GeometricMechanism(n, alpha), loss, members, exact=True
        )
        assert is_derivable_from_geometric(interaction.induced, alpha)

    @given(case=consumers())
    @settings(max_examples=15, deadline=None)
    def test_interaction_dominates_face_value(self, case):
        n, alpha, seed, members = case
        loss = random_monotone_loss(
            n, rng=np.random.default_rng(seed), exact=True
        )
        g = GeometricMechanism(n, alpha)
        interaction = optimal_interaction(g, loss, members, exact=True)
        assert interaction.loss <= g.worst_case_loss(loss, members)
