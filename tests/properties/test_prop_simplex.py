"""Property-based agreement between the exact simplex and HiGHS."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleProgramError
from repro.solvers.base import LinearProgram
from repro.solvers.scipy_backend import ScipyBackend
from repro.solvers.simplex import ExactSimplexBackend

seeds = st.integers(min_value=0, max_value=2**31)


def random_bounded_program(seed, num_vars=4, num_cuts=3):
    """A random LP guaranteed bounded: variables live on a simplex."""
    rng = np.random.default_rng(seed)
    lp = LinearProgram(num_vars)
    lp.set_objective(
        [
            (i, Fraction(int(rng.integers(-8, 9)), 5))
            for i in range(num_vars)
        ]
    )
    lp.add_eq([(i, 1) for i in range(num_vars)], 1)
    for _ in range(num_cuts):
        terms = [
            (i, Fraction(int(rng.integers(0, 4)), 2))
            for i in range(num_vars)
        ]
        rhs = Fraction(int(rng.integers(1, 5)), 2)
        lp.add_le(terms, rhs)
    return lp


class TestBackendAgreement:
    @given(seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_same_objective_value(self, seed):
        lp = random_bounded_program(seed)
        try:
            exact = ExactSimplexBackend().solve(lp)
        except InfeasibleProgramError:
            with pytest.raises(InfeasibleProgramError):
                ScipyBackend().solve(lp)
            return
        approx = ScipyBackend().solve(lp)
        assert float(exact.objective) == pytest.approx(
            approx.objective, abs=1e-7
        )

    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_exact_solution_is_feasible(self, seed):
        lp = random_bounded_program(seed)
        try:
            solution = ExactSimplexBackend().solve(lp)
        except InfeasibleProgramError:
            return
        values = solution.values
        assert all(v >= 0 for v in values)
        for terms, rhs in lp.le_constraints:
            assert sum(c * values[v] for v, c in terms) <= rhs
        for terms, rhs in lp.eq_constraints:
            assert sum(c * values[v] for v, c in terms) == rhs

    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_objective_value_consistent_with_solution(self, seed):
        lp = random_bounded_program(seed)
        try:
            solution = ExactSimplexBackend().solve(lp)
        except InfeasibleProgramError:
            return
        assert lp.evaluate_objective(solution.values) == solution.objective
