"""Property-based tests for Theorem 2's characterization."""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.characterization import three_entry_condition
from repro.core.derivability import (
    check_derivability,
    derivation_factor,
    privacy_chain_kernel,
)
from repro.core.geometric import GeometricMechanism
from repro.core.privacy import is_differentially_private
from repro.linalg.stochastic import (
    is_generalized_stochastic,
    random_stochastic_matrix,
)

alphas = st.fractions(
    min_value=Fraction(1, 10), max_value=Fraction(9, 10), max_denominator=30
)
sizes = st.integers(min_value=1, max_value=4)
seeds = st.integers(min_value=0, max_value=2**31)


def random_mechanism(n, seed):
    return random_stochastic_matrix(
        n + 1, rng=np.random.default_rng(seed), exact=True
    )


class TestFactorProperties:
    @given(n=sizes, alpha=alphas, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_factor_has_unit_row_sums(self, n, alpha, seed):
        """Poole's group fact, for arbitrary stochastic targets."""
        factor = derivation_factor(random_mechanism(n, seed), alpha)
        assert is_generalized_stochastic(factor)

    @given(n=sizes, alpha=alphas, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_reconstruction_identity(self, n, alpha, seed):
        """G @ (G^{-1} M) == M exactly, derivable or not."""
        target = random_mechanism(n, seed)
        factor = derivation_factor(target, alpha)
        product = np.dot(GeometricMechanism(n, alpha).matrix, factor)
        assert (product == target).all()

    @given(n=sizes, alpha=alphas, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_sufficiency_direction(self, n, alpha, seed):
        """Every G @ T is derivable and its factor is T itself."""
        kernel = random_mechanism(n, seed)
        induced = GeometricMechanism(n, alpha).post_process(kernel)
        report = check_derivability(induced, alpha)
        assert report.derivable
        assert (report.factor == kernel).all()

    @given(n=st.integers(min_value=2, max_value=4), alpha=alphas, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_characterization_matches_entry_conditions(self, n, alpha, seed):
        """Theorem 2 both ways: factor >= 0 iff the DP boundary rows plus
        every interior three-entry condition hold."""
        matrix = random_mechanism(n, seed)
        report = check_derivability(matrix, alpha)
        boundary_ok = all(
            matrix[0, j] >= alpha * matrix[1, j]
            and matrix[n, j] >= alpha * matrix[n - 1, j]
            for j in range(n + 1)
        )
        interior_ok = all(
            three_entry_condition(
                alpha, matrix[i - 1, j], matrix[i, j], matrix[i + 1, j]
            )
            for j in range(n + 1)
            for i in range(1, n)
        )
        assert report.derivable == (boundary_ok and interior_ok)

    @given(n=sizes, alpha=alphas, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_derivable_implies_private(self, n, alpha, seed):
        """Derivability is strictly stronger than alpha-DP."""
        matrix = random_mechanism(n, seed)
        report = check_derivability(matrix, alpha)
        if report.derivable:
            assert is_differentially_private(matrix, alpha)


class TestLemma3Properties:
    @given(a=alphas, b=alphas, n=sizes)
    @settings(max_examples=40, deadline=None)
    def test_chain_kernel_direction(self, a, b, n):
        """T_{a,b} exists iff a <= b."""
        from repro.exceptions import NotDerivableError

        if a <= b:
            kernel = privacy_chain_kernel(n, a, b)
            product = np.dot(GeometricMechanism(n, a).matrix, kernel)
            assert (product == GeometricMechanism(n, b).matrix).all()
        else:
            try:
                privacy_chain_kernel(n, a, b)
            except NotDerivableError:
                pass
            else:
                raise AssertionError(
                    f"privacy removal a={a} > b={b} must be impossible"
                )
