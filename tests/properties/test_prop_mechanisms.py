"""Property-based tests for mechanism-composition invariants."""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometric import GeometricMechanism
from repro.core.mechanism import Mechanism
from repro.core.multilevel import MultiLevelRelease
from repro.linalg.stochastic import random_stochastic_matrix

alphas = st.fractions(
    min_value=Fraction(1, 10), max_value=Fraction(9, 10), max_denominator=24
)
sizes = st.integers(min_value=1, max_value=4)
seeds = st.integers(min_value=0, max_value=2**31)


def kernel(n, seed):
    return random_stochastic_matrix(
        n + 1, rng=np.random.default_rng(seed), exact=True
    )


class TestCompositionProperties:
    @given(n=sizes, alpha=alphas, s1=seeds, s2=seeds)
    @settings(max_examples=30, deadline=None)
    def test_post_process_is_associative(self, n, alpha, s1, s2):
        """(M T1) T2 == M (T1 T2) — Definition 3 composes."""
        g = GeometricMechanism(n, alpha)
        t1, t2 = kernel(n, s1), kernel(n, s2)
        left = g.post_process(t1).post_process(t2)
        right = g.post_process(np.dot(t1, t2))
        assert left == right

    @given(n=sizes, alpha=alphas, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_post_process_preserves_stochasticity(self, n, alpha, seed):
        g = GeometricMechanism(n, alpha)
        induced = g.post_process(kernel(n, seed))
        for i in range(n + 1):
            row = induced.distribution(i)
            assert sum(row.tolist()) == 1
            assert all(entry >= 0 for entry in row.tolist())

    @given(n=sizes, alpha=alphas)
    @settings(max_examples=30, deadline=None)
    def test_identity_kernel_neutral(self, n, alpha):
        g = GeometricMechanism(n, alpha)
        assert g.post_process(Mechanism.identity(n).matrix) == Mechanism(
            g.matrix
        )

    @given(n=sizes, alpha=alphas, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_worst_case_loss_bounds(self, n, alpha, seed):
        """Equation 1's evaluation is bounded by the loss range, and the
        *optimal* interaction never does worse than the best constant
        guess (which is a feasible kernel)."""
        from repro.core.interaction import optimal_interaction
        from repro.losses import AbsoluteLoss

        g = GeometricMechanism(n, alpha)
        induced = g.post_process(kernel(n, seed))
        face_value = induced.worst_case_loss(AbsoluteLoss())
        assert 0 <= face_value <= n
        best_constant = min(
            max(abs(i - r) for i in range(n + 1)) for r in range(n + 1)
        )
        optimal = optimal_interaction(g, AbsoluteLoss(), exact=True)
        assert optimal.loss <= best_constant


class TestAlgorithmOneProperties:
    @given(
        a=alphas,
        b=alphas,
        n=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_two_level_marginals_and_collusion(self, a, b, n):
        if a >= b:
            a, b = b, a
        if a == b:
            return
        release = MultiLevelRelease(n, [a, b])
        for check in release.verify_all_coalitions():
            assert check.holds

    @given(a=alphas, b=alphas, n=st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_second_marginal_exact(self, a, b, n):
        if a >= b:
            a, b = b, a
        if a == b:
            return
        release = MultiLevelRelease(n, [a, b])
        expected = GeometricMechanism(n, b).matrix
        for i in range(n + 1):
            joint = release.joint_distribution(i)
            for r in range(n + 1):
                marginal = sum(
                    p for pattern, p in joint.items() if pattern[1] == r
                )
                assert marginal == expected[i, r]
