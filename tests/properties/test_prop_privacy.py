"""Property-based tests for privacy invariants."""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometric import GeometricMechanism
from repro.core.mechanism import Mechanism
from repro.core.privacy import (
    alpha_to_epsilon,
    epsilon_to_alpha,
    is_differentially_private,
    tightest_alpha,
)
from repro.linalg.stochastic import random_stochastic_matrix

# Rational alphas strictly inside (0, 1).
alphas = st.fractions(
    min_value=Fraction(1, 20), max_value=Fraction(19, 20), max_denominator=40
)

sizes = st.integers(min_value=1, max_value=5)
seeds = st.integers(min_value=0, max_value=2**31)


class TestGeometricPrivacyProperties:
    @given(n=sizes, alpha=alphas)
    @settings(max_examples=40, deadline=None)
    def test_geometric_tightest_alpha_is_construction_alpha(self, n, alpha):
        assert tightest_alpha(GeometricMechanism(n, alpha)) == alpha

    @given(n=sizes, alpha=alphas)
    @settings(max_examples=40, deadline=None)
    def test_geometric_private_at_every_weaker_level(self, n, alpha):
        g = GeometricMechanism(n, alpha)
        weaker = alpha / 2
        assert is_differentially_private(g, weaker)

    @given(n=sizes, alpha=alphas, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_post_processing_preserves_privacy(self, n, alpha, seed):
        """The data-processing inequality for Definition 2."""
        g = GeometricMechanism(n, alpha)
        kernel = random_stochastic_matrix(
            n + 1, rng=np.random.default_rng(seed), exact=True
        )
        processed = g.post_process(kernel)
        assert is_differentially_private(processed, alpha)

    @given(n=sizes, alpha=alphas, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_tightest_alpha_definition(self, n, alpha, seed):
        """is_dp(M, a) for every a up to tightest_alpha, not beyond."""
        g = GeometricMechanism(n, alpha)
        kernel = random_stochastic_matrix(
            n + 1, rng=np.random.default_rng(seed), exact=True
        )
        mechanism = g.post_process(kernel)
        tight = tightest_alpha(mechanism)
        assert is_differentially_private(mechanism, tight)
        if tight < 1:
            just_above = tight + (1 - tight) / 1000
            assert not is_differentially_private(mechanism, just_above)


class TestConversionProperties:
    @given(
        epsilon=st.floats(
            min_value=0.001, max_value=20, allow_nan=False
        )
    )
    def test_epsilon_alpha_round_trip(self, epsilon):
        import math

        alpha = epsilon_to_alpha(epsilon)
        assert 0 < alpha < 1
        assert math.isclose(alpha_to_epsilon(alpha), epsilon, rel_tol=1e-9)

    @given(a=alphas, b=alphas)
    def test_alpha_order_reverses_epsilon_order(self, a, b):
        if a < b:
            assert alpha_to_epsilon(a) > alpha_to_epsilon(b)


class TestMixtureProperties:
    @given(n=sizes, alpha=alphas, weight=st.fractions(
        min_value=Fraction(0), max_value=Fraction(1), max_denominator=20
    ))
    @settings(max_examples=30, deadline=None)
    def test_mixture_with_uniform_only_helps_privacy(self, n, alpha, weight):
        """Mixing any mechanism with the uniform one increases privacy."""
        g = GeometricMechanism(n, alpha).matrix
        u = Mechanism.uniform(n).matrix
        mixed = np.empty_like(g)
        for i in range(n + 1):
            for r in range(n + 1):
                mixed[i, r] = (1 - weight) * g[i, r] + weight * u[i, r]
        assert tightest_alpha(mixed) >= alpha
