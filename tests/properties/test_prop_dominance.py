"""Property-based dominance: geometric beats random DP mechanisms.

Theorem 1's quantifier is over ALL alpha-DP mechanisms. Hypothesis pits
the geometric deployment against random vertices of the DP polytope for
random monotone consumers; the geometric side may never lose.
"""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometric import GeometricMechanism
from repro.core.interaction import optimal_interaction
from repro.core.polytope import random_private_mechanism
from repro.losses.random import random_monotone_loss

alphas = st.fractions(
    min_value=Fraction(1, 6), max_value=Fraction(5, 6), max_denominator=12
)
seeds = st.integers(min_value=0, max_value=2**31)
sizes = st.integers(min_value=1, max_value=3)


class TestDominance:
    @given(n=sizes, alpha=alphas, seed=seeds)
    @settings(max_examples=12, deadline=None)
    def test_geometric_never_loses(self, n, alpha, seed):
        rng = np.random.default_rng(seed)
        rival = random_private_mechanism(n, alpha, rng)
        loss = random_monotone_loss(n, rng=rng)
        members = sorted(
            set(rng.integers(0, n + 1, size=rng.integers(1, n + 2)).tolist())
        )
        g = GeometricMechanism(n, alpha)
        with_g = optimal_interaction(g, loss, members, exact=True).loss
        with_rival = optimal_interaction(
            rival, loss, members, exact=True
        ).loss
        assert with_g <= with_rival

    @given(n=sizes, alpha=alphas, seed=seeds)
    @settings(max_examples=12, deadline=None)
    def test_vertices_never_beat_the_bespoke_optimum(self, n, alpha, seed):
        """The bespoke LP optimum lower-bounds every deployed mechanism's
        post-interaction loss — including raw polytope vertices."""
        from repro.core.optimal import optimal_mechanism

        rng = np.random.default_rng(seed)
        rival = random_private_mechanism(n, alpha, rng)
        loss = random_monotone_loss(n, rng=rng)
        bespoke = optimal_mechanism(n, alpha, loss, exact=True).loss
        with_rival = optimal_interaction(rival, loss, exact=True).loss
        assert bespoke <= with_rival
