"""Property tests: the factor-space reformulation is exactly equivalent.

Theorem 2 justifies solving the bespoke-optimal LP over the derivation
factor ``T`` (``x = G @ T``) instead of the mechanism itself. Hypothesis
drives random monotone losses and side-information sets through the
factor-space pipeline, the certify-first hybrid, and the exact simplex,
requiring bit-identical optimal losses — and requires every factor-space
candidate to pass the exact x-space primal/dual certificate.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimal import (
    build_optimal_lp,
    factor_space_candidate,
    optimal_mechanism,
)
from repro.losses.base import loss_matrix
from repro.losses.random import random_monotone_loss
from repro.solvers.hybrid import certify_solution
from repro.solvers.scipy_backend import has_direct_highs
from repro.solvers.simplex import ExactSimplexBackend

pytestmark = pytest.mark.skipif(
    not has_direct_highs(),
    reason="scipy build lacks the direct HiGHS bindings",
)

alphas = st.fractions(
    min_value=Fraction(1, 8), max_value=Fraction(7, 8), max_denominator=16
)
sizes = st.integers(min_value=1, max_value=4)
seeds = st.integers(min_value=0, max_value=2**31)


@st.composite
def consumers(draw):
    n = draw(sizes)
    alpha = draw(alphas)
    seed = draw(seeds)
    members = draw(
        st.sets(st.integers(min_value=0, max_value=n), min_size=1)
    )
    return n, alpha, seed, sorted(members)


class TestFactorSpaceEquivalence:
    @given(case=consumers())
    @settings(max_examples=25, deadline=None)
    def test_optimal_loss_bit_identical_across_solvers(self, case):
        n, alpha, seed, members = case
        loss = random_monotone_loss(
            n, rng=np.random.default_rng(seed), exact=True
        )
        factor = optimal_mechanism(
            n, alpha, loss, members, exact=True, space="factor"
        )
        hybrid = optimal_mechanism(n, alpha, loss, members, exact=True)
        simplex = optimal_mechanism(
            n, alpha, loss, members, exact=True, backend=ExactSimplexBackend()
        )
        assert factor.loss == hybrid.loss == simplex.loss
        assert isinstance(factor.loss, Fraction)

    @given(case=consumers())
    @settings(max_examples=20, deadline=None)
    def test_factor_candidate_certifies_against_x_space(self, case):
        n, alpha, seed, members = case
        loss = random_monotone_loss(
            n, rng=np.random.default_rng(seed), exact=True
        )
        table = loss_matrix(loss, n)
        candidate = factor_space_candidate(n, alpha, table, members)
        assert candidate is not None
        program, _ = build_optimal_lp(n, alpha, table, members)
        certified = certify_solution(program, candidate.values)
        assert certified is not None
        assert certified.objective == candidate.objective
