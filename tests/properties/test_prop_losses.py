"""Property-based tests for loss-function invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.losses.base import check_monotone
from repro.losses.composite import (
    CappedLoss,
    MaxLoss,
    ScaledLoss,
    ShiftedLoss,
    SumLoss,
)
from repro.losses.random import random_monotone_loss
from repro.losses.standard import AbsoluteLoss, PowerLoss

seeds = st.integers(min_value=0, max_value=2**31)
sizes = st.integers(min_value=1, max_value=6)


class TestRandomMonotoneProperties:
    @given(n=sizes, seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_always_inside_the_model(self, n, seed):
        loss = random_monotone_loss(n, rng=np.random.default_rng(seed))
        check_monotone(loss, n)

    @given(n=sizes, seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_diagonal_is_global_minimum_per_row(self, n, seed):
        loss = random_monotone_loss(n, rng=np.random.default_rng(seed))
        table = loss.matrix(n)
        for i in range(n + 1):
            assert table[i, i] == min(table[i, r] for r in range(n + 1))


class TestCombinatorClosure:
    """Combinators keep losses inside the paper's model."""

    @given(
        n=sizes,
        seed=seeds,
        factor=st.integers(min_value=0, max_value=10),
        offset=st.integers(min_value=0, max_value=5),
        cap=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_composites_stay_monotone(self, n, seed, factor, offset, cap):
        rng = np.random.default_rng(seed)
        base_a = random_monotone_loss(n, rng=rng)
        base_b = random_monotone_loss(n, rng=rng)
        for combined in (
            ScaledLoss(base_a, factor),
            ShiftedLoss(base_a, offset),
            CappedLoss(base_a, cap),
            MaxLoss([base_a, base_b]),
            SumLoss([base_a, base_b]),
        ):
            check_monotone(combined, n)

    @given(exponent=st.integers(min_value=0, max_value=5), n=sizes)
    @settings(max_examples=30, deadline=None)
    def test_power_losses_monotone(self, exponent, n):
        check_monotone(PowerLoss(exponent), n)

    @given(n=sizes, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_sum_dominates_parts(self, n, seed):
        rng = np.random.default_rng(seed)
        a = random_monotone_loss(n, rng=rng)
        b = random_monotone_loss(n, rng=rng)
        combined = SumLoss([a, b])
        for i in range(n + 1):
            for r in range(n + 1):
                assert combined(i, r) >= max(a(i, r), b(i, r))

    @given(n=sizes)
    @settings(max_examples=20, deadline=None)
    def test_absolute_triangle_inequality(self, n):
        loss = AbsoluteLoss()
        for i in range(n + 1):
            for j in range(n + 1):
                for k in range(n + 1):
                    assert loss(i, k) <= loss(i, j) + loss(j, k)
