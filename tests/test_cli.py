"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_fraction_alpha(self):
        args = build_parser().parse_args(
            ["optimal", "-n", "3", "--alpha", "1/4"]
        )
        from fractions import Fraction

        assert args.alpha == Fraction(1, 4)

    def test_rejects_bad_alpha(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["optimal", "-n", "3", "--alpha", "abc"]
            )


class TestSweepParser:
    def test_parses_grid_and_flags(self):
        args = build_parser().parse_args(
            [
                "sweep", "universality", "-n", "2", "3",
                "--alphas", "1/2", "1/4", "--losses", "absolute", "squared",
                "--workers", "2", "--cache-dir", "/tmp/cache",
                "--space", "factor",
            ]
        )
        assert args.sizes == [2, 3]
        assert len(args.alphas) == 2
        assert args.workers == 2
        assert args.cache_dir == "/tmp/cache"
        assert args.space == "factor"
        assert args.exact is True
        assert args.no_cache is False

    def test_float_flag(self):
        args = build_parser().parse_args(
            ["sweep", "universality", "-n", "2", "--alphas", "1/2", "--float"]
        )
        assert args.exact is False

    def test_cache_dir_and_no_cache_conflict(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "sweep", "universality", "-n", "2", "--alphas", "1/2",
                    "--cache-dir", "/tmp/x", "--no-cache",
                ]
            )


class TestSweepCommand:
    def test_universality_sweep_runs(self, capsys):
        assert main(
            ["sweep", "universality", "-n", "2", "--alphas", "1/2",
             "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "universality holds on all cells: yes" in out

    def test_sweep_with_cache_dir_reports_stats(self, capsys, tmp_path):
        argv = [
            "sweep", "universality", "-n", "2", "--alphas", "1/2",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "misses" in first
        assert any(tmp_path.rglob("*.json"))
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 misses" in second

    def test_sweep_workers(self, capsys):
        assert main(
            ["sweep", "universality", "-n", "2", "3", "--alphas", "1/2",
             "--workers", "2", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "universality holds on all cells: yes" in out

    def test_bayesian_sweep_runs(self, capsys):
        assert main(
            ["sweep", "bayesian", "-n", "2", "--alphas", "1/2", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "bayesian sweep" in out
        assert "universality holds on all cells: yes" in out

    def test_sweep_factor_space(self, capsys):
        assert main(
            ["sweep", "universality", "-n", "3", "--alphas", "1/4",
             "--space", "factor", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "168/415" in out

    def test_optimal_factor_space(self, capsys):
        assert main(
            ["optimal", "-n", "3", "--alpha", "1/4", "--space", "factor"]
        ) == 0
        out = capsys.readouterr().out
        assert "168/415" in out


class TestCommands:
    def test_reproduce_table1(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        out = capsys.readouterr().out
        assert "168/415" in out

    def test_reproduce_table2(self, capsys):
        assert main(["reproduce", "table2", "-n", "2", "--alpha", "1/2"]) == 0
        assert "det G'" in capsys.readouterr().out

    def test_reproduce_figure1(self, capsys):
        assert main(["reproduce", "figure1"]) == 0
        assert "#" in capsys.readouterr().out

    def test_reproduce_appendix_b(self, capsys):
        assert main(["reproduce", "appendix-b"]) == 0
        out = capsys.readouterr().out
        assert "-1/12" in out
        assert "derivable from the geometric mechanism: False" in out

    def test_optimal_command(self, capsys):
        code = main(
            [
                "optimal",
                "-n",
                "2",
                "--alpha",
                "1/2",
                "--loss",
                "squared",
                "--side",
                "0",
                "1",
            ]
        )
        assert code == 0
        assert "minimax loss" in capsys.readouterr().out

    def test_release_command(self, capsys):
        code = main(
            [
                "release",
                "-n",
                "3",
                "--alphas",
                "1/4",
                "1/2",
                "--true-result",
                "2",
                "--seed",
                "11",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "collusion resistance" in out
        assert "OK" in out

    def test_audit_command(self, capsys):
        code = main(
            [
                "audit",
                "-n",
                "2",
                "--alpha",
                "1/2",
                "--samples",
                "2000",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        assert "empirical alpha" in capsys.readouterr().out

    def test_tradeoff_command(self, capsys):
        code = main(
            [
                "tradeoff",
                "-n",
                "2",
                "--alphas",
                "1/4",
                "1/2",
                "--loss",
                "absolute",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "frontier" in out
        assert "epsilon" in out

    def test_domain_error_returns_one(self, capsys):
        # Release levels must be increasing: triggers a ReproError.
        code = main(
            [
                "release",
                "-n",
                "3",
                "--alphas",
                "1/2",
                "1/4",
                "--true-result",
                "1",
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestCompileAndCacheCommands:
    def test_compile_then_warm_recompile(self, capsys, tmp_path):
        argv = [
            "compile",
            "-n",
            "3",
            "--alphas",
            "1/3",
            "--losses",
            "absolute",
            "--store",
            str(tmp_path / "store"),
            "--cache-dir",
            str(tmp_path / "solves"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "compiled geometric" in out
        assert "compiled optimal" in out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cached" in out
        assert "0 compiled this run" in out

    def test_compile_geometric_only(self, capsys, tmp_path):
        code = main(
            [
                "compile",
                "-n",
                "4",
                "--alphas",
                "1/2",
                "--losses",
                "--store",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "geometric" in out
        assert "optimal" not in out

    def test_cache_verify_reports_ok(self, capsys, tmp_path):
        assert (
            main(
                [
                    "compile",
                    "-n",
                    "3",
                    "--alphas",
                    "1/3",
                    "--store",
                    str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["cache", "verify", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 LP solves" in out
        assert "all 2 artifacts verified" in out

    def test_cache_verify_flags_corruption(self, capsys, tmp_path):
        import json
        import pathlib

        assert (
            main(
                [
                    "compile",
                    "-n",
                    "3",
                    "--alphas",
                    "1/2",
                    "--losses",
                    "--store",
                    str(tmp_path),
                ]
            )
            == 0
        )
        entry = next(pathlib.Path(tmp_path).rglob("*.json"))
        payload = json.loads(entry.read_text())
        payload["kernel"][0][0] = payload["kernel"][1][1]
        entry.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["cache", "verify", "--store", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "failed" in err

    def test_cache_gc(self, capsys, tmp_path):
        assert (
            main(
                [
                    "compile",
                    "-n",
                    "2",
                    "3",
                    "4",
                    "--alphas",
                    "1/2",
                    "--losses",
                    "--store",
                    str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "cache",
                "gc",
                "--store",
                str(tmp_path),
                "--max-entries",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "evicted 2 entries" in out
        assert "1 remain" in out

    def test_missing_store_is_an_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
        from repro.release import artifacts as artifacts_module

        monkeypatch.setattr(
            artifacts_module, "_default_store", artifacts_module._UNSET
        )
        assert main(["cache", "verify"]) == 1
        assert "artifact store" in capsys.readouterr().err


class TestServeCommand:
    def test_parser_defaults(self):
        from fractions import Fraction

        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8790
        assert args.floor == Fraction(0)
        assert args.batch_window == 0.002
        assert args.batch_max == 4096
        assert args.audit_rate == 0.05
        assert args.audit_every == 64
        assert args.seed is None

    def test_serve_refuses_empty_store(self, capsys, tmp_path):
        assert main(["serve", "--store", str(tmp_path)]) == 1
        assert "repro compile" in capsys.readouterr().err

    def test_compile_side_grid(self, capsys, tmp_path):
        code = main(
            [
                "compile",
                "-n",
                "3",
                "--alphas",
                "1/2",
                "--side-grid",
                "lower",
                "upper",
                "--store",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # geometric + optimal(all) + 3 lower sets + 3 upper sets.
        assert "compiling 8 artifacts" in out
        assert "side={1..3}" in out
        assert "side={0..1}" in out
        # The pre-warmed grid is servable with zero request-path solves.
        from fractions import Fraction

        from repro.release.artifacts import ArtifactStore
        from repro.serving import MechanismServer

        server = MechanismServer(
            ArtifactStore(tmp_path), audit_rate=0.0
        )
        assert server.load_store() == 8
        assert all(d.verification.ok for d in server.deployments)
        sides = {
            d.spec.side
            for d in server.deployments
            if d.spec.side is not None
        }
        assert (1, 2, 3) in sides and (0, 1) in sides
        assert Fraction(1, 2) == server.deployments[0].spec.alpha


class TestObsAndLedgerCommands:
    def make_ledger(self, tmp_path):
        from fractions import Fraction

        from repro.release.durable_ledger import DurableLedger

        ledger = DurableLedger(tmp_path / "ledger", floor=Fraction(1, 8))
        ledger.charge("alice", Fraction(1, 2))
        ledger.charge("alice", Fraction(1, 2))
        ledger.charge("bob", Fraction(1, 2))
        ledger.close()
        return tmp_path / "ledger"

    def test_serve_parser_trace_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.trace_rate == 0.0
        assert args.trace_dir is None
        assert args.trace_ring == 1024

    def test_ledger_show_burn_columns(self, capsys, tmp_path):
        directory = self.make_ledger(tmp_path)
        assert main(["ledger", "show", "--ledger-dir", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "alice: releases=2" in out
        assert "spent=66.7% charges_left=1" in out
        assert "bob: releases=1" in out
        assert "spent=33.3% charges_left=2" in out

    def test_obs_top_from_ledger_dir(self, capsys, tmp_path):
        directory = self.make_ledger(tmp_path)
        assert main(["obs", "top", "--ledger-dir", str(directory)]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        # Most-burned first, with the floor-proximity footer.
        assert lines[1].startswith("alice")
        assert lines[2].startswith("bob")
        assert "within k charges of the floor: <=1: 1, <=2: 2" in lines[-1]

    def test_obs_top_without_source_errors(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        assert main(["obs", "top"]) == 1
        assert "--server or --ledger-dir" in capsys.readouterr().err

    def test_obs_tail_from_trace_dir(self, capsys, tmp_path):
        import json

        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        with open(trace_dir / "trace.jsonl", "w") as handle:
            for i in range(3):
                handle.write(json.dumps({
                    "trace": f"t-{i}", "span": f"s-{i}", "parent": None,
                    "name": "wal.fsync" if i else "server.publish",
                    "ts": 100.0 + i, "dur_ms": 0.5,
                    "attrs": {"mode": "group"},
                }) + "\n")
            handle.write("{torn tail\n")
        code = main([
            "obs", "tail", "--trace-dir", str(trace_dir),
            "--name", "wal.fsync", "--limit", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("wal.fsync") == 1
        assert "trace=t-2" in out and "mode=group" in out

    def test_obs_tail_missing_log_errors(self, capsys, tmp_path):
        assert main(["obs", "tail", "--trace-dir", str(tmp_path)]) == 1
        assert "no trace log" in capsys.readouterr().err

    def test_obs_against_live_server(self, capsys, tmp_path):
        """top/tail/export over real HTTP against a serving process."""
        import asyncio
        from fractions import Fraction

        from repro.obs.cli import obs_export, obs_tail, obs_top
        from repro.release.artifacts import ArtifactSpec, ArtifactStore
        from repro.serving import InProcessClient, MechanismServer

        store = ArtifactStore(tmp_path / "artifacts")
        store.get_or_compile(ArtifactSpec("geometric", 8, Fraction(1, 2)))
        server = MechanismServer(
            store, floor=Fraction(1, 8), batch_window=0.001,
            audit_rate=0.0, seed=7, trace_rate=1.0,
        )
        server.load_store()

        async def go():
            await server.start(port=0)
            client = InProcessClient(server)
            await client.publish(
                user="alice", n=8, alpha="1/2", true_result=3
            )
            base = f"http://127.0.0.1:{server.port}"
            loop = asyncio.get_running_loop()
            try:
                top = await loop.run_in_executor(
                    None, lambda: obs_top(server=base)
                )
                tail = await loop.run_in_executor(
                    None,
                    lambda: obs_tail(server=base, name="server.publish"),
                )
                exported = await loop.run_in_executor(
                    None, lambda: obs_export(server=base)
                )
                out_file = tmp_path / "metrics.prom"
                message = await loop.run_in_executor(
                    None,
                    lambda: obs_export(
                        server=base, format="json", out=out_file
                    ),
                )
            finally:
                await server.stop()
            return top, tail, exported, message, out_file

        top, tail, exported, message, out_file = asyncio.run(go())
        assert "alice" in top and "66.7%" not in top  # one charge: 33.3%
        assert "33.3%" in top
        assert "server.publish" in tail
        assert "repro_requests_total" in exported
        assert "wrote" in message
        # The json format is the legacy metrics snapshot, not the
        # Prometheus families.
        assert '"published": 1' in out_file.read_text()
