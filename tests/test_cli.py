"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_fraction_alpha(self):
        args = build_parser().parse_args(
            ["optimal", "-n", "3", "--alpha", "1/4"]
        )
        from fractions import Fraction

        assert args.alpha == Fraction(1, 4)

    def test_rejects_bad_alpha(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["optimal", "-n", "3", "--alpha", "abc"]
            )


class TestSweepParser:
    def test_parses_grid_and_flags(self):
        args = build_parser().parse_args(
            [
                "sweep", "universality", "-n", "2", "3",
                "--alphas", "1/2", "1/4", "--losses", "absolute", "squared",
                "--workers", "2", "--cache-dir", "/tmp/cache",
                "--space", "factor",
            ]
        )
        assert args.sizes == [2, 3]
        assert len(args.alphas) == 2
        assert args.workers == 2
        assert args.cache_dir == "/tmp/cache"
        assert args.space == "factor"
        assert args.exact is True
        assert args.no_cache is False

    def test_float_flag(self):
        args = build_parser().parse_args(
            ["sweep", "universality", "-n", "2", "--alphas", "1/2", "--float"]
        )
        assert args.exact is False

    def test_cache_dir_and_no_cache_conflict(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "sweep", "universality", "-n", "2", "--alphas", "1/2",
                    "--cache-dir", "/tmp/x", "--no-cache",
                ]
            )


class TestSweepCommand:
    def test_universality_sweep_runs(self, capsys):
        assert main(
            ["sweep", "universality", "-n", "2", "--alphas", "1/2",
             "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "universality holds on all cells: yes" in out

    def test_sweep_with_cache_dir_reports_stats(self, capsys, tmp_path):
        argv = [
            "sweep", "universality", "-n", "2", "--alphas", "1/2",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "misses" in first
        assert any(tmp_path.rglob("*.json"))
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 misses" in second

    def test_sweep_workers(self, capsys):
        assert main(
            ["sweep", "universality", "-n", "2", "3", "--alphas", "1/2",
             "--workers", "2", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "universality holds on all cells: yes" in out

    def test_bayesian_sweep_runs(self, capsys):
        assert main(
            ["sweep", "bayesian", "-n", "2", "--alphas", "1/2", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "bayesian sweep" in out
        assert "universality holds on all cells: yes" in out

    def test_sweep_factor_space(self, capsys):
        assert main(
            ["sweep", "universality", "-n", "3", "--alphas", "1/4",
             "--space", "factor", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "168/415" in out

    def test_optimal_factor_space(self, capsys):
        assert main(
            ["optimal", "-n", "3", "--alpha", "1/4", "--space", "factor"]
        ) == 0
        out = capsys.readouterr().out
        assert "168/415" in out


class TestCommands:
    def test_reproduce_table1(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        out = capsys.readouterr().out
        assert "168/415" in out

    def test_reproduce_table2(self, capsys):
        assert main(["reproduce", "table2", "-n", "2", "--alpha", "1/2"]) == 0
        assert "det G'" in capsys.readouterr().out

    def test_reproduce_figure1(self, capsys):
        assert main(["reproduce", "figure1"]) == 0
        assert "#" in capsys.readouterr().out

    def test_reproduce_appendix_b(self, capsys):
        assert main(["reproduce", "appendix-b"]) == 0
        out = capsys.readouterr().out
        assert "-1/12" in out
        assert "derivable from the geometric mechanism: False" in out

    def test_optimal_command(self, capsys):
        code = main(
            [
                "optimal",
                "-n",
                "2",
                "--alpha",
                "1/2",
                "--loss",
                "squared",
                "--side",
                "0",
                "1",
            ]
        )
        assert code == 0
        assert "minimax loss" in capsys.readouterr().out

    def test_release_command(self, capsys):
        code = main(
            [
                "release",
                "-n",
                "3",
                "--alphas",
                "1/4",
                "1/2",
                "--true-result",
                "2",
                "--seed",
                "11",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "collusion resistance" in out
        assert "OK" in out

    def test_audit_command(self, capsys):
        code = main(
            [
                "audit",
                "-n",
                "2",
                "--alpha",
                "1/2",
                "--samples",
                "2000",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        assert "empirical alpha" in capsys.readouterr().out

    def test_tradeoff_command(self, capsys):
        code = main(
            [
                "tradeoff",
                "-n",
                "2",
                "--alphas",
                "1/4",
                "1/2",
                "--loss",
                "absolute",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "frontier" in out
        assert "epsilon" in out

    def test_domain_error_returns_one(self, capsys):
        # Release levels must be increasing: triggers a ReproError.
        code = main(
            [
                "release",
                "-n",
                "3",
                "--alphas",
                "1/2",
                "1/4",
                "--true-result",
                "1",
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err
