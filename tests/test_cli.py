"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_fraction_alpha(self):
        args = build_parser().parse_args(
            ["optimal", "-n", "3", "--alpha", "1/4"]
        )
        from fractions import Fraction

        assert args.alpha == Fraction(1, 4)

    def test_rejects_bad_alpha(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["optimal", "-n", "3", "--alpha", "abc"]
            )


class TestCommands:
    def test_reproduce_table1(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        out = capsys.readouterr().out
        assert "168/415" in out

    def test_reproduce_table2(self, capsys):
        assert main(["reproduce", "table2", "-n", "2", "--alpha", "1/2"]) == 0
        assert "det G'" in capsys.readouterr().out

    def test_reproduce_figure1(self, capsys):
        assert main(["reproduce", "figure1"]) == 0
        assert "#" in capsys.readouterr().out

    def test_reproduce_appendix_b(self, capsys):
        assert main(["reproduce", "appendix-b"]) == 0
        out = capsys.readouterr().out
        assert "-1/12" in out
        assert "derivable from the geometric mechanism: False" in out

    def test_optimal_command(self, capsys):
        code = main(
            [
                "optimal",
                "-n",
                "2",
                "--alpha",
                "1/2",
                "--loss",
                "squared",
                "--side",
                "0",
                "1",
            ]
        )
        assert code == 0
        assert "minimax loss" in capsys.readouterr().out

    def test_release_command(self, capsys):
        code = main(
            [
                "release",
                "-n",
                "3",
                "--alphas",
                "1/4",
                "1/2",
                "--true-result",
                "2",
                "--seed",
                "11",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "collusion resistance" in out
        assert "OK" in out

    def test_audit_command(self, capsys):
        code = main(
            [
                "audit",
                "-n",
                "2",
                "--alpha",
                "1/2",
                "--samples",
                "2000",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        assert "empirical alpha" in capsys.readouterr().out

    def test_tradeoff_command(self, capsys):
        code = main(
            [
                "tradeoff",
                "-n",
                "2",
                "--alphas",
                "1/4",
                "1/2",
                "--loss",
                "absolute",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "frontier" in out
        assert "epsilon" in out

    def test_domain_error_returns_one(self, capsys):
        # Release levels must be increasing: triggers a ReproError.
        code = main(
            [
                "release",
                "-n",
                "3",
                "--alphas",
                "1/2",
                "1/4",
                "--true-result",
                "1",
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err
