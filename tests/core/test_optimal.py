"""Tests for the bespoke optimal-mechanism LP (Section 2.5)."""

from fractions import Fraction

import pytest

from repro.core.geometric import GeometricMechanism
from repro.core.optimal import build_optimal_lp, optimal_mechanism
from repro.core.privacy import is_differentially_private
from repro.exceptions import ValidationError
from repro.losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss
from repro.losses.base import loss_matrix


class TestLPConstruction:
    def test_variable_count(self):
        table = loss_matrix(AbsoluteLoss(), 3)
        program, d_index = build_optimal_lp(
            3, Fraction(1, 4), table, [0, 1, 2, 3]
        )
        assert program.num_vars == 17
        assert d_index == 16

    def test_constraint_count(self):
        table = loss_matrix(AbsoluteLoss(), 3)
        program, _ = build_optimal_lp(3, Fraction(1, 4), table, [0, 1])
        # 2 loss rows + 2 * 3 * 4 privacy rows; 4 stochastic equalities.
        assert len(program.le_constraints) == 2 + 24
        assert len(program.eq_constraints) == 4

    def test_shared_blocks_reused_across_consumers(self):
        """Privacy/stochasticity rows are per-(n, alpha), not per-cell."""
        table_abs = loss_matrix(AbsoluteLoss(), 3)
        table_sq = loss_matrix(SquaredLoss(), 3)
        first, _ = build_optimal_lp(3, Fraction(1, 4), table_abs, [0, 1])
        second, _ = build_optimal_lp(3, Fraction(1, 4), table_sq, [0, 1, 2])
        # The privacy term tuples are the very same objects.
        assert (
            first.le_constraints[2][0] is second.le_constraints[3][0]
        )
        assert first.eq_constraints[0][0] is second.eq_constraints[0][0]

    def test_exact_and_float_blocks_stay_separate(self):
        """Fraction(1, 4) == 0.25 must not alias cache entries."""
        table = loss_matrix(AbsoluteLoss(), 3)
        exact_program, _ = build_optimal_lp(
            3, Fraction(1, 4), table, [0]
        )
        float_program, _ = build_optimal_lp(3, 0.25, table, [0])
        exact_alpha = exact_program.le_constraints[1][0][1][1]
        float_alpha = float_program.le_constraints[1][0][1][1]
        assert isinstance(exact_alpha, Fraction)
        assert isinstance(float_alpha, float)


class TestOptimalMechanism:
    def test_result_is_private(self):
        result = optimal_mechanism(3, Fraction(1, 4), AbsoluteLoss(), exact=True)
        assert is_differentially_private(result.mechanism, Fraction(1, 4))

    def test_table1_value(self):
        """The exact optimum of the paper's Table 1 instance."""
        result = optimal_mechanism(3, Fraction(1, 4), AbsoluteLoss(), exact=True)
        assert result.loss == Fraction(168, 415)

    def test_beats_geometric_at_face_value(self):
        """The bespoke optimum is at least as good as raw G."""
        alpha = Fraction(1, 2)
        result = optimal_mechanism(3, alpha, SquaredLoss(), exact=True)
        g = GeometricMechanism(3, alpha)
        assert result.loss <= g.worst_case_loss(SquaredLoss())

    def test_side_information_weakly_helps(self):
        """Smaller S never increases the optimal loss."""
        alpha = Fraction(1, 2)
        full = optimal_mechanism(3, alpha, AbsoluteLoss(), exact=True)
        informed = optimal_mechanism(
            3, alpha, AbsoluteLoss(), {1, 2}, exact=True
        )
        assert informed.loss <= full.loss

    def test_more_privacy_costs_utility(self):
        """Optimal loss is monotone in alpha (more privacy, more loss)."""
        losses = [
            optimal_mechanism(3, alpha, AbsoluteLoss(), exact=True).loss
            for alpha in (Fraction(1, 5), Fraction(1, 2), Fraction(4, 5))
        ]
        assert losses[0] <= losses[1] <= losses[2]

    def test_scipy_matches_exact(self):
        exact = optimal_mechanism(3, Fraction(1, 4), AbsoluteLoss(), exact=True)
        approx = optimal_mechanism(3, 0.25, AbsoluteLoss(), exact=False)
        assert approx.loss == pytest.approx(float(exact.loss), abs=1e-7)

    def test_zero_one_loss_optimum(self):
        result = optimal_mechanism(2, Fraction(1, 2), ZeroOneLoss(), exact=True)
        assert 0 < result.loss < 1

    def test_side_information_recorded(self):
        result = optimal_mechanism(
            3, Fraction(1, 2), AbsoluteLoss(), {2, 0}, exact=True
        )
        assert result.side_information == (0, 2)

    def test_alpha_validation(self):
        with pytest.raises(ValidationError):
            optimal_mechanism(3, Fraction(3, 2), AbsoluteLoss())

    def test_n_validation(self):
        with pytest.raises(ValidationError):
            optimal_mechanism(0, Fraction(1, 2), AbsoluteLoss())


class TestRefinement:
    def test_refined_keeps_primary_optimum(self):
        alpha = Fraction(1, 4)
        plain = optimal_mechanism(3, alpha, AbsoluteLoss(), exact=True)
        refined = optimal_mechanism(
            3, alpha, AbsoluteLoss(), exact=True, refine=True
        )
        assert refined.loss == plain.loss
        assert refined.refined

    def test_refined_weakly_improves_secondary(self):
        """L'(refined) <= L'(plain) by construction."""
        alpha = Fraction(1, 2)

        def secondary(mechanism):
            matrix = mechanism.matrix
            return sum(
                matrix[i, r] * abs(i - r)
                for i in range(4)
                for r in range(4)
            )

        plain = optimal_mechanism(3, alpha, ZeroOneLoss(), exact=True)
        refined = optimal_mechanism(
            3, alpha, ZeroOneLoss(), exact=True, refine=True
        )
        assert secondary(refined.mechanism) <= secondary(plain.mechanism)

    def test_refined_still_private(self):
        alpha = Fraction(1, 2)
        refined = optimal_mechanism(
            3, alpha, SquaredLoss(), exact=True, refine=True
        )
        assert is_differentially_private(refined.mechanism, alpha)
