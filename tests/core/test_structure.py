"""Tests for the Lemma 5 structure analyzer."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.mechanism import Mechanism
from repro.core.optimal import optimal_mechanism
from repro.core.structure import analyze_structure
from repro.losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss


class TestAnalyzeStructure:
    def test_geometric_conforms(self, g3_quarter):
        """G itself is an optimal mechanism; its rows must conform."""
        report = analyze_structure(g3_quarter, Fraction(1, 4))
        assert report.conforms

    def test_geometric_gap_is_one(self, g3_quarter):
        """For G there is no free column: every column is at a privacy
        boundary, so the greedy prefix and suffix meet (c2 - c1 == 1)."""
        report = analyze_structure(g3_quarter, Fraction(1, 4))
        for pair in report.pairs:
            assert pair.c2 - pair.c1 == 1

    @pytest.mark.parametrize(
        "loss", [AbsoluteLoss(), SquaredLoss(), ZeroOneLoss()]
    )
    @pytest.mark.parametrize("alpha", [Fraction(1, 4), Fraction(1, 2)])
    def test_refined_optimum_conforms(self, loss, alpha):
        """Lemma 5 on the lexicographically-refined LP optimum."""
        result = optimal_mechanism(3, alpha, loss, exact=True, refine=True)
        report = analyze_structure(result.mechanism, alpha)
        assert report.conforms, report.pairs

    def test_uniform_conforms_via_overlap(self):
        """Uniform rows make both constraints non-tight everywhere...

        ...except that no prefix/suffix is tight at all: c1 = -1,
        c2 = n+1 gives gap n+2, so uniform must NOT conform for n >= 1.
        Uniform is indeed not optimal for any consumer at alpha < 1.
        """
        report = analyze_structure(Mechanism.uniform(3), Fraction(1, 2))
        assert not report.conforms
        assert report.violating_rows() == [0, 1, 2]

    def test_float_tolerance(self):
        from repro.core.geometric import GeometricMechanism

        g = GeometricMechanism(3, 0.25)
        report = analyze_structure(g, 0.25, atol=1e-9)
        assert report.conforms

    def test_pair_fields(self, g3_quarter):
        report = analyze_structure(g3_quarter, Fraction(1, 4))
        rows = [pair.row for pair in report.pairs]
        assert rows == [0, 1, 2]

    def test_accepts_plain_matrix(self):
        matrix = np.array(
            [[0.8, 0.2], [0.4, 0.6]]
        )
        report = analyze_structure(matrix, 0.5)
        # x[1,0] = 0.4 = 0.5 * 0.8 (prefix tight at column 0);
        # x[0,1] = 0.2 < 0.5 * 0.6: suffix not tight; c1=0, c2=2, gap 2.
        assert report.conforms
