"""Tests for the Appendix B counterexample mechanism."""

from fractions import Fraction

from repro.core.counterexample import (
    APPENDIX_B_ALPHA,
    appendix_b_mechanism,
    verify_appendix_b,
)
from repro.core.derivability import is_derivable_from_geometric
from repro.core.privacy import is_differentially_private, tightest_alpha


class TestAppendixB:
    def test_alpha_constant(self):
        assert APPENDIX_B_ALPHA == Fraction(1, 2)

    def test_matrix_is_stochastic(self):
        mechanism = appendix_b_mechanism()
        for i in range(4):
            assert sum(mechanism.distribution(i).tolist()) == 1

    def test_matrix_entries_match_paper(self):
        mechanism = appendix_b_mechanism()
        assert mechanism.probability(0, 2) == Fraction(4, 9)
        assert mechanism.probability(3, 0) == Fraction(13, 18)
        assert mechanism.probability(3, 2) == Fraction(1, 18)

    def test_is_half_private(self):
        assert is_differentially_private(
            appendix_b_mechanism(), Fraction(1, 2)
        )

    def test_tightest_alpha_is_exactly_half(self):
        assert tightest_alpha(appendix_b_mechanism()) == Fraction(1, 2)

    def test_not_derivable(self):
        assert not is_derivable_from_geometric(
            appendix_b_mechanism(), Fraction(1, 2)
        )

    def test_verify_bundle(self):
        outcome = verify_appendix_b()
        assert outcome["is_private"] is True
        assert outcome["derivable"] is False

    def test_witness_value_matches_paper(self):
        """The paper computes (1+a^2) m11 - a (m01 + m21) = -0.75/9."""
        outcome = verify_appendix_b()
        assert outcome["witness_value"] == Fraction(-3, 36)
        assert outcome["witness_value"] == Fraction(-75, 100) / 9

    def test_witness_location_is_column_one(self):
        outcome = verify_appendix_b()
        assert outcome["witness"] == (1, 1)

    def test_fresh_instances_equal(self):
        assert appendix_b_mechanism() == appendix_b_mechanism()
