"""Tests for Algorithm 1 and Lemma 4 (multi-level release)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.geometric import GeometricMechanism
from repro.core.multilevel import (
    MultiLevelRelease,
    naive_independent_release_alpha,
)
from repro.core.privacy import tightest_alpha
from repro.exceptions import ValidationError

LEVELS = [Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)]


@pytest.fixture
def release():
    return MultiLevelRelease(3, LEVELS)


class TestConstruction:
    def test_levels_must_increase(self):
        with pytest.raises(ValidationError):
            MultiLevelRelease(3, [Fraction(1, 2), Fraction(1, 4)])

    def test_levels_must_be_distinct(self):
        with pytest.raises(ValidationError):
            MultiLevelRelease(3, [Fraction(1, 2), Fraction(1, 2)])

    def test_at_least_one_level(self):
        with pytest.raises(ValidationError):
            MultiLevelRelease(3, [])

    def test_single_level_allowed(self):
        release = MultiLevelRelease(3, [Fraction(1, 2)])
        assert release.num_levels == 1

    def test_kernels_are_per_step(self, release):
        assert release.num_levels == 3
        assert release.kernel(0).shape == (4, 4)
        assert release.kernel(1).shape == (4, 4)


class TestMarginals:
    def test_stage_i_marginal_is_geometric(self, release):
        """Each r_i is marginally distributed as G_{alpha_i} (Algorithm 1)."""
        for level, alpha in enumerate(LEVELS):
            expected = GeometricMechanism(3, alpha).matrix
            for i in range(4):
                joint = release.joint_distribution(i)
                for r in range(4):
                    marginal = sum(
                        p for pattern, p in joint.items() if pattern[level] == r
                    )
                    assert marginal == expected[i, r]

    def test_joint_distribution_sums_to_one(self, release):
        for i in range(4):
            assert sum(release.joint_distribution(i).values()) == 1


class TestSampling:
    def test_release_length(self, release, rng):
        assert len(release.release(2, rng)) == 3

    def test_release_values_in_range(self, release, rng):
        for _ in range(20):
            assert all(0 <= r <= 3 for r in release.release(1, rng))

    def test_release_many_shape(self, release, rng):
        samples = release.release_many(0, 50, rng)
        assert samples.shape == (50, 3)

    def test_release_deterministic_with_seed(self, release):
        a = release.release(2, rng=123)
        b = release.release(2, rng=123)
        assert a == b

    def test_first_stage_empirical_marginal(self, release, rng):
        draws = release.release_many(2, 20000, rng)[:, 0]
        expected = GeometricMechanism(3, Fraction(1, 4)).matrix[2]
        for r in range(4):
            assert np.mean(draws == r) == pytest.approx(
                float(expected[r]), abs=0.015
            )

    def test_bad_true_result(self, release, rng):
        with pytest.raises(ValidationError):
            release.release(4, rng)


class TestLemma4:
    def test_every_coalition_holds(self, release):
        checks = release.verify_all_coalitions()
        assert len(checks) == 7
        assert all(check.holds for check in checks)

    def test_full_coalition_achieves_exactly_alpha1(self, release):
        check = release.verify_collusion_resistance([0, 1, 2])
        assert check.required_alpha == Fraction(1, 4)
        assert check.achieved_alpha == Fraction(1, 4)

    def test_late_coalition_bounded_by_its_least_private(self, release):
        check = release.verify_collusion_resistance([1, 2])
        assert check.required_alpha == Fraction(1, 2)
        assert check.achieved_alpha >= Fraction(1, 2)

    def test_singleton_coalitions_match_marginals(self, release):
        for level, alpha in enumerate(LEVELS):
            check = release.verify_collusion_resistance([level])
            assert check.achieved_alpha == alpha

    def test_coalition_mechanism_rows_are_distributions(self, release):
        _, matrix = release.coalition_mechanism([0, 2])
        for i in range(4):
            assert sum(matrix[i].tolist()) == 1

    def test_bad_coalition(self, release):
        with pytest.raises(ValidationError):
            release.verify_collusion_resistance([])
        with pytest.raises(ValidationError):
            release.verify_collusion_resistance([5])


class TestNaiveDegradation:
    def test_product_formula(self):
        assert naive_independent_release_alpha(LEVELS) == Fraction(3, 32)

    def test_single_release_no_degradation(self):
        assert naive_independent_release_alpha([Fraction(1, 3)]) == Fraction(1, 3)

    def test_strictly_worse_than_chained(self, release):
        naive = naive_independent_release_alpha(LEVELS)
        chained = release.verify_collusion_resistance([0, 1, 2]).achieved_alpha
        assert naive < chained

    def test_naive_joint_mechanism_tightness(self):
        """Direct verification: independent releases' joint mechanism is
        exactly prod(alpha_i)-DP, not alpha_1-DP."""
        levels = [Fraction(1, 2), Fraction(3, 4)]
        mechanisms = [GeometricMechanism(2, a) for a in levels]
        size = 3
        joint = np.empty((size, size * size), dtype=object)
        for i in range(size):
            for r1 in range(size):
                for r2 in range(size):
                    joint[i, r1 * size + r2] = (
                        mechanisms[0].matrix[i, r1]
                        * mechanisms[1].matrix[i, r2]
                    )
        assert tightest_alpha(joint) == Fraction(3, 8)

    def test_empty_levels_rejected(self):
        with pytest.raises(ValidationError):
            naive_independent_release_alpha([])
