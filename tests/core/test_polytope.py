"""Tests for the DP-polytope vertex sampler."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.derivability import is_derivable_from_geometric
from repro.core.polytope import dp_polytope_lp, random_private_mechanism
from repro.core.privacy import is_differentially_private, tightest_alpha
from repro.exceptions import ValidationError


class TestPolytopeLP:
    def test_dimensions(self):
        program = dp_polytope_lp(3, Fraction(1, 2), [0] * 16)
        assert program.num_vars == 16
        assert len(program.eq_constraints) == 4
        assert len(program.le_constraints) == 24

    def test_objective_length_checked(self):
        with pytest.raises(ValidationError):
            dp_polytope_lp(3, Fraction(1, 2), [0] * 15)


class TestRandomPrivateMechanism:
    @pytest.mark.parametrize("seed", range(8))
    def test_vertices_are_private(self, seed):
        alpha = Fraction(1, 2)
        mechanism = random_private_mechanism(
            3, alpha, np.random.default_rng(seed)
        )
        assert is_differentially_private(mechanism, alpha)

    def test_exact_vertices_are_exact(self, rng):
        mechanism = random_private_mechanism(2, Fraction(1, 3), rng)
        assert mechanism.is_exact
        for i in range(3):
            assert sum(mechanism.distribution(i).tolist()) == 1

    def test_float_mode(self, rng):
        mechanism = random_private_mechanism(
            3, 0.5, rng, exact=False
        )
        assert not mechanism.is_exact
        assert is_differentially_private(mechanism, 0.5, atol=1e-7)

    def test_different_seeds_reach_different_vertices(self):
        a = random_private_mechanism(3, Fraction(1, 2), np.random.default_rng(0))
        b = random_private_mechanism(3, Fraction(1, 2), np.random.default_rng(1))
        assert a != b

    def test_some_vertices_are_not_derivable(self):
        """The polytope is strictly larger than the derivable set
        (Appendix B's point, witnessed by random vertices)."""
        alpha = Fraction(1, 2)
        derivable_flags = [
            is_derivable_from_geometric(
                random_private_mechanism(
                    3, alpha, np.random.default_rng(seed)
                ),
                alpha,
            )
            for seed in range(12)
        ]
        assert not all(derivable_flags)

    def test_vertices_saturate_privacy_constraints(self, rng):
        """A vertex of the DP polytope is private at exactly alpha
        (some ratio constraint is tight) unless it sits on a stochastic
        face only — tightest alpha can exceed alpha but stays valid."""
        alpha = Fraction(1, 2)
        mechanism = random_private_mechanism(3, alpha, rng)
        assert tightest_alpha(mechanism) >= alpha
