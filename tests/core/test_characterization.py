"""Tests for Lemma 1 / Lemma 2 closed-form determinants."""

from fractions import Fraction

import pytest

from repro.core.characterization import (
    geometric_determinant,
    gprime_determinant,
    replaced_column_determinant,
    three_entry_condition,
    three_entry_value,
)
from repro.core.geometric import GeometricMechanism, gprime_matrix
from repro.exceptions import ValidationError

ALPHAS = [Fraction(1, 5), Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)]


class TestLemma1:
    @pytest.mark.parametrize("alpha", ALPHAS)
    @pytest.mark.parametrize("size", [2, 3, 4, 5])
    def test_gprime_formula(self, size, alpha):
        direct = gprime_matrix(size - 1, alpha).determinant()
        assert direct == gprime_determinant(size, alpha)

    @pytest.mark.parametrize("alpha", ALPHAS)
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_geometric_determinant_formula(self, n, alpha):
        g = GeometricMechanism(n, alpha).to_rational_matrix()
        assert g.determinant() == geometric_determinant(n + 1, alpha)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_geometric_determinant_positive(self, alpha):
        """Lemma 1's claim: det(G_{n,alpha}) > 0."""
        for n in range(1, 5):
            assert geometric_determinant(n + 1, alpha) > 0

    def test_small_size_rejected(self):
        with pytest.raises(ValidationError):
            geometric_determinant(1, Fraction(1, 2))


class TestLemma2:
    """Closed forms for det G'(i, x) vs brute-force elimination."""

    @pytest.mark.parametrize("alpha", ALPHAS)
    @pytest.mark.parametrize("size", [3, 4, 5])
    @pytest.mark.parametrize("index", [0, 1, -1])
    def test_closed_form_matches_elimination(self, size, alpha, index):
        index = index % size
        gp = gprime_matrix(size - 1, alpha)
        column = [Fraction(k * k + 1, 13) for k in range(size)]
        direct = gp.replace_column(index, column).determinant()
        assert direct == replaced_column_determinant(
            size, alpha, index, column
        )

    def test_sign_condition_first_column(self):
        """Part 1: det G'(0, x) > 0 iff x0 > a x1."""
        alpha = Fraction(1, 2)
        positive = replaced_column_determinant(3, alpha, 0, [3, 4, 0])
        zero = replaced_column_determinant(3, alpha, 0, [2, 4, 0])
        negative = replaced_column_determinant(3, alpha, 0, [1, 4, 0])
        assert positive > 0
        assert zero == 0
        assert negative < 0

    def test_sign_condition_last_column(self):
        """Part 2: det G'(m-1, x) > 0 iff x_{m-1} > a x_{m-2}."""
        alpha = Fraction(1, 2)
        positive = replaced_column_determinant(3, alpha, 2, [0, 4, 3])
        negative = replaced_column_determinant(3, alpha, 2, [0, 4, 1])
        assert positive > 0
        assert negative < 0

    def test_sign_condition_interior(self):
        """Part 3: det G'(i, x) >= 0 iff (1+a^2) x_i >= a (x_{i-1}+x_{i+1})."""
        alpha = Fraction(1, 2)
        # (1 + 1/4) * 2 = 5/2 vs (1/2) * (3 + 2) = 5/2: exactly tight.
        tight = replaced_column_determinant(4, alpha, 1, [3, 2, 2, 0])
        assert tight == 0
        below = replaced_column_determinant(4, alpha, 1, [3, 1, 2, 0])
        assert below < 0

    def test_wrong_length_rejected(self):
        with pytest.raises(ValidationError):
            replaced_column_determinant(3, Fraction(1, 2), 0, [1, 2])

    def test_bad_index_rejected(self):
        with pytest.raises(ValidationError):
            replaced_column_determinant(3, Fraction(1, 2), 5, [1, 2, 3])


class TestThreeEntryCondition:
    def test_paper_rearrangement(self):
        """(x2 - a x1) >= a (x3 - a x2) <=> (1+a^2) x2 >= a (x1 + x3)."""
        alpha = Fraction(1, 3)
        for x1, x2, x3 in [(1, 2, 3), (3, 1, 2), (0, 0, 0), (5, 2, 5)]:
            lhs = (x2 - alpha * x1) >= alpha * (x3 - alpha * x2)
            assert three_entry_condition(alpha, x1, x2, x3) == lhs

    def test_value_formula(self):
        assert three_entry_value(
            Fraction(1, 2), Fraction(2, 9), Fraction(1, 9), Fraction(2, 9)
        ) == Fraction(5, 36) - Fraction(2, 9)

    def test_geometric_columns_satisfy_condition(self, g3_quarter):
        """Every G column satisfies its own three-entry condition."""
        matrix = g3_quarter.matrix
        for j in range(4):
            for i in range(1, 3):
                assert three_entry_condition(
                    Fraction(1, 4),
                    matrix[i - 1, j],
                    matrix[i, j],
                    matrix[i + 1, j],
                )

    def test_float_slack(self):
        assert three_entry_condition(0.5, 1.0, 0.8, 1.0, atol=1e-9)
        assert not three_entry_condition(0.5, 1.0, 0.79, 1.0)
