"""Tests for differential-privacy predicates (Definition 2)."""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.core.geometric import GeometricMechanism
from repro.core.mechanism import Mechanism
from repro.core.privacy import (
    alpha_to_epsilon,
    assert_differentially_private,
    epsilon_to_alpha,
    group_privacy_alpha,
    is_differentially_private,
    tightest_alpha,
)
from repro.exceptions import NotPrivateError, ValidationError


class TestConversions:
    def test_alpha_one_is_epsilon_zero(self):
        assert alpha_to_epsilon(1) == 0.0

    def test_alpha_zero_is_epsilon_infinity(self):
        assert alpha_to_epsilon(0) == math.inf

    def test_round_trip(self):
        for alpha in (0.1, 0.25, 0.5, 0.9):
            assert epsilon_to_alpha(alpha_to_epsilon(alpha)) == pytest.approx(
                alpha
            )

    def test_epsilon_ln2(self):
        assert alpha_to_epsilon(0.5) == pytest.approx(math.log(2))

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValidationError):
            epsilon_to_alpha(-1)

    def test_alpha_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            alpha_to_epsilon(1.5)


class TestPrivacyPredicate:
    def test_geometric_is_private_at_its_level(self, g3_quarter):
        assert is_differentially_private(g3_quarter, Fraction(1, 4))

    def test_geometric_private_at_weaker_levels(self, g3_quarter):
        assert is_differentially_private(g3_quarter, Fraction(1, 5))
        assert is_differentially_private(g3_quarter, Fraction(1, 100))

    def test_geometric_not_private_at_stronger_level(self, g3_quarter):
        assert not is_differentially_private(g3_quarter, Fraction(1, 3))

    def test_identity_only_vacuously_private(self):
        identity = Mechanism.identity(3)
        assert is_differentially_private(identity, 0)
        assert not is_differentially_private(identity, Fraction(1, 100))

    def test_uniform_is_absolutely_private(self):
        uniform = Mechanism.uniform(3)
        assert is_differentially_private(uniform, 1)

    def test_witness_reported(self):
        identity = Mechanism.identity(2)
        with pytest.raises(NotPrivateError) as excinfo:
            assert_differentially_private(identity, Fraction(1, 2))
        assert excinfo.value.witness is not None

    def test_accepts_raw_arrays(self):
        matrix = np.array([[0.6, 0.4], [0.4, 0.6]])
        assert is_differentially_private(matrix, 0.4 / 0.6 - 1e-12)

    def test_float_tolerance(self):
        # A ratio exactly alpha, perturbed by < atol, still accepted.
        matrix = np.array([[0.5, 0.5], [0.25 - 1e-12, 0.75 + 1e-12]])
        assert is_differentially_private(matrix, 0.5)

    def test_rejects_1d_input(self):
        with pytest.raises(ValidationError):
            is_differentially_private(np.array([0.5, 0.5]), 0.5)


class TestTightestAlpha:
    @pytest.mark.parametrize(
        "alpha", [Fraction(1, 5), Fraction(1, 4), Fraction(1, 2), Fraction(4, 5)]
    )
    def test_geometric_tightest_is_alpha(self, alpha):
        g = GeometricMechanism(4, alpha)
        assert tightest_alpha(g) == alpha

    def test_uniform_tightest_is_one(self):
        assert tightest_alpha(Mechanism.uniform(3)) == 1

    def test_identity_tightest_is_zero(self):
        assert tightest_alpha(Mechanism.identity(3)) == 0

    def test_monotone_with_post_processing(self, g3_quarter, rng):
        """Post-processing can only increase the tightest privacy level."""
        from repro.linalg.stochastic import random_stochastic_matrix

        base = tightest_alpha(g3_quarter)
        for _ in range(5):
            kernel = random_stochastic_matrix(4, rng=rng, exact=True)
            processed = g3_quarter.post_process(kernel)
            assert tightest_alpha(processed) >= base

    def test_float_matrix(self):
        g = GeometricMechanism(3, 0.3)
        assert tightest_alpha(g) == pytest.approx(0.3)

    def test_definition_consistency(self, g3_half):
        """is_dp(M, a) holds iff a <= tightest_alpha(M) (exact regime)."""
        tight = tightest_alpha(g3_half)
        assert is_differentially_private(g3_half, tight)
        assert not is_differentially_private(
            g3_half, tight + Fraction(1, 1000)
        )


class TestGroupPrivacy:
    def test_powers(self):
        assert group_privacy_alpha(Fraction(1, 2), 3) == Fraction(1, 8)

    def test_zero_distance_is_no_constraint(self):
        assert group_privacy_alpha(Fraction(1, 2), 0) == 1

    def test_geometric_rows_k_apart(self, g3_quarter):
        """Rows k apart satisfy the alpha^k ratio bound."""
        matrix = g3_quarter.matrix
        alpha = Fraction(1, 4)
        for i in range(4):
            for j in range(i + 1, 4):
                bound = group_privacy_alpha(alpha, j - i)
                for r in range(4):
                    ratio = matrix[i, r] / matrix[j, r]
                    assert bound <= ratio <= 1 / bound

    def test_negative_distance_rejected(self):
        with pytest.raises(ValidationError):
            group_privacy_alpha(Fraction(1, 2), -1)

    def test_non_integer_distance_rejected(self):
        with pytest.raises(ValidationError):
            group_privacy_alpha(Fraction(1, 2), 1.5)
