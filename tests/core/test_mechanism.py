"""Tests for the Mechanism class."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.mechanism import Mechanism
from repro.exceptions import NotStochasticError, ValidationError
from repro.losses.standard import AbsoluteLoss


def exact_uniform(n: int) -> Mechanism:
    return Mechanism.uniform(n)


class TestConstruction:
    def test_exact_from_fractions(self):
        m = Mechanism([[Fraction(1, 2), Fraction(1, 2)], [0, 1]])
        assert m.is_exact
        assert m.n == 1

    def test_float_from_lists(self):
        m = Mechanism([[0.5, 0.5], [0.25, 0.75]])
        assert not m.is_exact
        assert m.size == 2

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            Mechanism([[0.5, 0.5]])

    def test_rejects_single_result(self):
        with pytest.raises(ValidationError):
            Mechanism([[1.0]])

    def test_rejects_non_stochastic(self):
        with pytest.raises(NotStochasticError):
            Mechanism([[0.5, 0.4], [0.5, 0.5]])

    def test_rejects_negative(self):
        with pytest.raises(NotStochasticError):
            Mechanism([[1.5, -0.5], [0.5, 0.5]])

    def test_exact_rejects_off_by_epsilon(self):
        with pytest.raises(NotStochasticError):
            Mechanism(
                [
                    [Fraction(1, 2), Fraction(499, 1000)],
                    [Fraction(1, 2), Fraction(1, 2)],
                ]
            )

    def test_identity_constructor(self):
        m = Mechanism.identity(3)
        assert m.is_exact
        assert m.probability(2, 2) == 1
        assert m.probability(2, 1) == 0

    def test_uniform_constructor(self):
        m = Mechanism.uniform(4)
        assert m.probability(0, 4) == Fraction(1, 5)

    def test_from_mechanism_copy(self):
        m = Mechanism.identity(2)
        copy = Mechanism(m)
        assert copy == m

    def test_matrix_is_defensive_copy(self):
        m = Mechanism.identity(2)
        matrix = m.matrix
        matrix[0, 0] = Fraction(0)
        assert m.probability(0, 0) == 1


class TestAccessors:
    def test_distribution_row(self, g3_quarter):
        row = g3_quarter.distribution(0)
        assert sum(row.tolist()) == 1

    def test_distribution_out_of_range(self, g3_quarter):
        with pytest.raises(ValidationError):
            g3_quarter.distribution(4)

    def test_column(self, g3_quarter):
        column = g3_quarter.column(0)
        assert column[0] == Fraction(4, 5)

    def test_probability_bounds(self, g3_quarter):
        with pytest.raises(ValidationError):
            g3_quarter.probability(0, 4)


class TestConversions:
    def test_to_float_round_trip(self):
        # Dyadic entries survive the float round trip losslessly.
        m = Mechanism(
            [[Fraction(1, 2), Fraction(1, 2)], [Fraction(1, 4), Fraction(3, 4)]]
        )
        f = m.to_float()
        assert not f.is_exact
        back = f.to_exact()
        assert back.is_exact
        assert back == m

    def test_to_float_idempotent(self):
        m = Mechanism([[0.5, 0.5], [0.5, 0.5]])
        assert m.to_float() is m

    def test_to_rational_matrix(self, g3_quarter):
        rational = g3_quarter.to_rational_matrix()
        assert rational.row_sums() == (1, 1, 1, 1)

    def test_to_rational_matrix_requires_exact(self):
        m = Mechanism([[0.5, 0.5], [0.5, 0.5]])
        with pytest.raises(ValidationError):
            m.to_rational_matrix()


class TestPostProcess:
    def test_identity_kernel_is_noop(self, g3_quarter):
        kernel = Mechanism.identity(3).matrix
        assert g3_quarter.post_process(kernel) == Mechanism(
            g3_quarter.matrix
        )

    def test_exact_times_exact_stays_exact(self, g3_quarter):
        induced = g3_quarter.post_process(Mechanism.uniform(3).matrix)
        assert induced.is_exact

    def test_exact_times_float_degrades_to_float(self, g3_quarter):
        induced = g3_quarter.post_process(np.eye(4))
        assert not induced.is_exact

    def test_kernel_shape_mismatch(self, g3_quarter):
        with pytest.raises(ValidationError):
            g3_quarter.post_process(np.eye(3))

    def test_kernel_must_be_stochastic(self, g3_quarter):
        bad = np.full((4, 4), 0.3)
        with pytest.raises(NotStochasticError):
            g3_quarter.post_process(bad)

    def test_collapse_kernel(self, g3_quarter):
        # Map everything to output 0.
        kernel = np.zeros((4, 4), dtype=object)
        kernel[...] = Fraction(0)
        for r in range(4):
            kernel[r, 0] = Fraction(1)
        induced = g3_quarter.post_process(kernel)
        for i in range(4):
            assert induced.probability(i, 0) == 1

    def test_accepts_mechanism_as_kernel(self, g3_quarter):
        induced = g3_quarter.post_process(Mechanism.uniform(3))
        assert induced.probability(0, 0) == Fraction(1, 4)


class TestSampling:
    def test_sample_in_range(self, g3_quarter, rng):
        for i in range(4):
            value = g3_quarter.sample(i, rng)
            assert 0 <= value <= 3

    def test_sample_many_shape(self, g3_quarter, rng):
        draws = g3_quarter.sample_many(1, 100, rng)
        assert draws.shape == (100,)
        assert set(np.unique(draws)) <= {0, 1, 2, 3}

    def test_sample_many_negative_count(self, g3_quarter, rng):
        with pytest.raises(ValidationError):
            g3_quarter.sample_many(0, -1, rng)

    def test_identity_mechanism_samples_truth(self, rng):
        m = Mechanism.identity(5)
        assert all(m.sample(3, rng) == 3 for _ in range(10))

    def test_empirical_frequencies_converge(self, rng):
        m = Mechanism([[Fraction(3, 4), Fraction(1, 4)], [0, 1]])
        draws = m.sample_many(0, 20000, rng)
        assert np.mean(draws == 0) == pytest.approx(0.75, abs=0.02)


class TestLossEvaluation:
    def test_expected_loss_identity_is_zero(self):
        m = Mechanism.identity(3)
        assert m.expected_loss(AbsoluteLoss(), 2) == 0

    def test_expected_loss_uniform(self):
        m = Mechanism.uniform(2)
        # E|1 - r| over uniform {0,1,2} = (1 + 0 + 1)/3.
        assert m.expected_loss(AbsoluteLoss(), 1) == Fraction(2, 3)

    def test_worst_case_loss_full_range(self):
        m = Mechanism.uniform(2)
        # Worst input is 0 or 2: (0+1+2)/3 = 1.
        assert m.worst_case_loss(AbsoluteLoss()) == 1

    def test_worst_case_loss_with_side_information(self):
        m = Mechanism.uniform(2)
        assert m.worst_case_loss(AbsoluteLoss(), {1}) == Fraction(2, 3)

    def test_worst_case_empty_side_info(self):
        m = Mechanism.uniform(2)
        with pytest.raises(ValidationError):
            m.worst_case_loss(AbsoluteLoss(), [])


class TestComparisons:
    def test_eq_and_hash_exact(self):
        a = Mechanism.identity(2)
        b = Mechanism.identity(2)
        assert a == b
        assert hash(a) == hash(b)

    def test_float_mechanism_unhashable(self):
        m = Mechanism([[0.5, 0.5], [0.5, 0.5]])
        with pytest.raises(TypeError):
            hash(m)

    def test_approx_equals_tolerance(self):
        a = Mechanism([[0.5, 0.5], [0.5, 0.5]])
        b = Mechanism([[0.5 + 1e-12, 0.5 - 1e-12], [0.5, 0.5]])
        assert a.approx_equals(b)

    def test_approx_equals_shape_mismatch(self):
        assert not Mechanism.identity(2).approx_equals(Mechanism.identity(3))

    def test_repr_mentions_regime(self, g3_quarter):
        assert "exact" in repr(g3_quarter)
