"""Tests for the optimal-interaction LP (Section 2.4.3)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.geometric import GeometricMechanism
from repro.core.interaction import (
    normalize_side_information,
    optimal_interaction,
)
from repro.core.mechanism import Mechanism
from repro.exceptions import SideInformationError
from repro.linalg.stochastic import is_row_stochastic
from repro.losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss


class TestNormalizeSideInformation:
    def test_none_is_full_range(self):
        assert normalize_side_information(None, 3) == [0, 1, 2, 3]

    def test_dedup_and_sort(self):
        assert normalize_side_information([3, 1, 1, 2], 3) == [1, 2, 3]

    def test_empty_rejected(self):
        with pytest.raises(SideInformationError):
            normalize_side_information([], 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(SideInformationError):
            normalize_side_information([4], 3)
        with pytest.raises(SideInformationError):
            normalize_side_information([-1], 3)


class TestOptimalInteraction:
    def test_kernel_is_stochastic(self, g3_quarter):
        result = optimal_interaction(g3_quarter, AbsoluteLoss(), exact=True)
        assert is_row_stochastic(result.kernel)

    def test_induced_is_postprocessing(self, g3_quarter):
        result = optimal_interaction(g3_quarter, AbsoluteLoss(), exact=True)
        rebuilt = g3_quarter.post_process(result.kernel)
        assert rebuilt == result.induced

    def test_never_worse_than_face_value(self, g3_quarter):
        """Interacting optimally cannot hurt (identity is feasible)."""
        for loss in (AbsoluteLoss(), SquaredLoss(), ZeroOneLoss()):
            face_value = g3_quarter.worst_case_loss(loss)
            result = optimal_interaction(g3_quarter, loss, exact=True)
            assert result.loss <= face_value

    def test_loss_matches_induced_mechanism(self, g3_quarter):
        result = optimal_interaction(
            g3_quarter, SquaredLoss(), {0, 1}, exact=True
        )
        assert result.loss == result.induced.worst_case_loss(
            SquaredLoss(), {0, 1}
        )

    def test_per_input_losses_cover_side_info(self, g3_quarter):
        result = optimal_interaction(
            g3_quarter, AbsoluteLoss(), {1, 3}, exact=True
        )
        assert set(result.per_input_loss) == {1, 3}
        assert result.loss == max(result.per_input_loss.values())

    def test_paper_example_remap(self, g3_quarter):
        """Example 1's intuition: side info {l..n} maps low outputs up.

        With S = {2, 3} the optimal kernel must never report 0 or 1 with
        positive probability mass that hurts; in particular the induced
        mechanism concentrates on {2, 3} columns for the worst case.
        """
        result = optimal_interaction(
            g3_quarter, AbsoluteLoss(), {2, 3}, exact=True
        )
        induced = result.induced
        # Reporting below the known lower bound is dominated: the kernel
        # moves all mass of outputs 0 and 1 to 2 or above.
        for r_prime in (0, 1):
            assert result.kernel[0, r_prime] == 0
            assert result.kernel[1, r_prime] == 0

    def test_singleton_side_info_gives_zero_loss(self, g3_quarter):
        """Knowing the result exactly means zero loss: map everything there."""
        result = optimal_interaction(
            g3_quarter, AbsoluteLoss(), {2}, exact=True
        )
        assert result.loss == 0
        for r in range(4):
            assert result.kernel[r, 2] == 1

    def test_scipy_and_exact_agree(self, g3_quarter):
        exact = optimal_interaction(g3_quarter, AbsoluteLoss(), exact=True)
        approx = optimal_interaction(
            g3_quarter.to_float(), AbsoluteLoss(), exact=False
        )
        assert float(exact.loss) == pytest.approx(approx.loss, abs=1e-7)

    def test_zero_one_loss_interaction(self, g3_half):
        result = optimal_interaction(g3_half, ZeroOneLoss(), exact=True)
        assert 0 < result.loss < 1

    def test_accepts_plain_matrix(self):
        matrix = np.array([[0.6, 0.4], [0.4, 0.6]])
        result = optimal_interaction(matrix, AbsoluteLoss())
        assert result.induced.n == 1

    def test_mechanism_postprocessed_by_kernel_keeps_privacy(self, g3_quarter):
        """The induced mechanism stays 1/4-DP (post-processing)."""
        from repro.core.privacy import is_differentially_private

        result = optimal_interaction(
            g3_quarter, AbsoluteLoss(), {1, 2, 3}, exact=True
        )
        assert is_differentially_private(result.induced, Fraction(1, 4))
