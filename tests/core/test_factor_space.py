"""Tests for the Theorem 2 derivability-reparameterized (factor-space) LP."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.derivability import compose_with_geometric, derive_mechanism
from repro.core.optimal import (
    build_optimal_lp,
    factor_space_candidate,
    optimal_mechanism,
    solve_factor_certified,
)
from repro.core.privacy import is_differentially_private
from repro.exceptions import ValidationError
from repro.losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss
from repro.losses.base import loss_matrix
from repro.solvers.hybrid import HybridBackend, certify_solution
from repro.solvers.scipy_backend import has_direct_highs
from repro.solvers.simplex import ExactSimplexBackend

needs_direct_highs = pytest.mark.skipif(
    not has_direct_highs(),
    reason="scipy build lacks the direct HiGHS bindings",
)


class TestFactorProgramShape:
    def test_privacy_block_vanishes(self):
        """Factor space has |S| + (n+1) rows; x space Theta(n^2)."""
        n = 5
        table = loss_matrix(AbsoluteLoss(), n)
        members = list(range(n + 1))
        x_program, _ = build_optimal_lp(n, Fraction(1, 3), table, members)
        factor, _ = build_optimal_lp(
            n, Fraction(1, 3), table, members, space="factor"
        )
        assert x_program.num_constraints() == len(members) + 2 * n * (
            n + 1
        ) + (n + 1)
        assert factor.num_constraints() == len(members) + (n + 1)
        assert len(factor.le_constraints) == len(members)
        assert len(factor.eq_constraints) == n + 1

    def test_side_information_prunes_loss_rows(self):
        n = 4
        table = loss_matrix(AbsoluteLoss(), n)
        factor, _ = build_optimal_lp(
            n, Fraction(1, 2), table, [0, 4], space="factor"
        )
        assert len(factor.le_constraints) == 2

    def test_factor_coefficients_are_g_times_loss(self):
        from repro.core.geometric import geometric_matrix

        n, alpha = 3, Fraction(1, 4)
        table = loss_matrix(AbsoluteLoss(), n)
        factor, d_index = build_optimal_lp(
            n, alpha, table, [1], space="factor"
        )
        geometric = geometric_matrix(n, alpha)
        [(terms, rhs)] = factor.le_constraints
        assert rhs == 0
        coeffs = dict(terms)
        assert coeffs.pop(d_index) == -1
        for (index, coeff) in coeffs.items():
            k, r = divmod(index, n + 1)
            assert coeff == geometric[1, k] * table[1, r]

    def test_rejects_unknown_space(self):
        table = loss_matrix(AbsoluteLoss(), 2)
        with pytest.raises(ValidationError):
            build_optimal_lp(2, Fraction(1, 2), table, [0, 1, 2], space="t")
        with pytest.raises(ValidationError):
            optimal_mechanism(2, Fraction(1, 2), AbsoluteLoss(), space="t")

    def test_unhashable_alpha_falls_back_to_uncached_blocks(self):
        """The x-space builder survives alphas the block cache can't key."""

        class UnhashableFraction(Fraction):
            __hash__ = None

        alpha = UnhashableFraction(1, 4)
        table = loss_matrix(AbsoluteLoss(), 3)
        program, d_index = build_optimal_lp(3, alpha, table, [0, 1, 2, 3])
        reference, _ = build_optimal_lp(
            3, Fraction(1, 4), table, [0, 1, 2, 3]
        )
        assert program.num_constraints() == reference.num_constraints()
        assert [
            (terms, rhs) for terms, rhs in program.le_constraints
        ] == [(terms, rhs) for terms, rhs in reference.le_constraints]
        solution = ExactSimplexBackend().solve(program)
        assert solution.objective == Fraction(168, 415)


class TestComposeWithGeometric:
    def test_roundtrip_with_derive_mechanism(self):
        n, alpha = 3, Fraction(1, 3)
        kernel = np.full((4, 4), Fraction(0), dtype=object)
        for row, target in enumerate((0, 1, 1, 3)):
            kernel[row, target] = Fraction(1)
        derived = compose_with_geometric(n, alpha, kernel)
        assert (derive_mechanism(derived, alpha) == kernel).all()

    def test_derived_mechanism_is_private_and_stochastic(self):
        n, alpha = 4, Fraction(1, 2)
        kernel = np.full((5, 5), Fraction(1, 5), dtype=object)
        derived = compose_with_geometric(n, alpha, kernel)
        assert all(sum(row) == 1 for row in derived)
        assert is_differentially_private(derived, alpha)

    def test_float_regime(self):
        derived = compose_with_geometric(2, 0.5, np.eye(3))
        from repro.core.geometric import geometric_matrix

        assert np.allclose(derived, geometric_matrix(2, 0.5))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValidationError):
            compose_with_geometric(3, Fraction(1, 2), np.eye(3))


@needs_direct_highs
class TestFactorSpaceSolves:
    GRID = [
        (n, alpha, loss, side)
        for n in (2, 3, 5)
        for alpha in (Fraction(1, 4), Fraction(1, 2))
        for loss in (AbsoluteLoss(), SquaredLoss(), ZeroOneLoss())
        for side in (None, (0, n))
    ]

    def test_losses_bit_identical_across_spaces_and_backends(self):
        for n, alpha, loss, side in self.GRID:
            factor = optimal_mechanism(
                n, alpha, loss, side, exact=True, space="factor"
            )
            hybrid = optimal_mechanism(n, alpha, loss, side, exact=True)
            simplex = optimal_mechanism(
                n,
                alpha,
                loss,
                side,
                exact=True,
                backend=ExactSimplexBackend(),
            )
            assert factor.loss == hybrid.loss == simplex.loss, (
                n,
                alpha,
                loss.describe(),
                side,
            )
            assert isinstance(factor.loss, Fraction)

    def test_factor_mechanism_is_feasible_and_private(self):
        for n, alpha, loss, side in self.GRID[:6]:
            result = optimal_mechanism(
                n, alpha, loss, side, exact=True, space="factor"
            )
            matrix = result.mechanism.matrix
            assert all(sum(row) == 1 for row in matrix)
            assert is_differentially_private(matrix, alpha)

    def test_candidate_passes_x_space_certificate(self):
        for n, alpha, loss, side in self.GRID:
            members = (
                list(range(n + 1)) if side is None else sorted(side)
            )
            table = loss_matrix(loss, n)
            candidate = factor_space_candidate(n, alpha, table, members)
            assert candidate is not None
            program, _ = build_optimal_lp(n, alpha, table, members)
            certified = certify_solution(program, candidate.values)
            assert certified is not None, (n, alpha, loss.describe(), side)
            assert certified.objective == candidate.objective

    def test_table1_cell(self):
        result = optimal_mechanism(
            3, Fraction(1, 4), AbsoluteLoss(), exact=True, space="factor"
        )
        assert result.loss == Fraction(168, 415)
        assert result.backend == "factor-certified"

    def test_factor_solution_is_derivable(self):
        """The factor path returns a mechanism with x = G @ T, T >= 0."""
        result = optimal_mechanism(
            5, Fraction(1, 3), AbsoluteLoss(), exact=True, space="factor"
        )
        factor = derive_mechanism(result.mechanism, Fraction(1, 3))
        assert (factor >= 0).all()
        assert all(sum(row) == 1 for row in factor)

    def test_refined_factor_matches_refined_x(self):
        refined_factor = optimal_mechanism(
            3,
            Fraction(1, 4),
            AbsoluteLoss(),
            exact=True,
            refine=True,
            space="factor",
        )
        refined_x = optimal_mechanism(
            3, Fraction(1, 4), AbsoluteLoss(), exact=True, refine=True
        )
        assert refined_factor.loss == refined_x.loss
        assert (
            refined_factor.mechanism.matrix == refined_x.mechanism.matrix
        ).all()

    def test_float_factor_space_matches_x(self):
        factor = optimal_mechanism(4, 0.3, AbsoluteLoss(), space="factor")
        direct = optimal_mechanism(4, 0.3, AbsoluteLoss())
        assert factor.loss == pytest.approx(float(direct.loss), abs=1e-7)

    def test_float_factor_cache_entry_not_served_to_x_space(self, tmp_path):
        """Uncertified float factor solves get their own cache variant."""
        from repro.solvers.cache import SolveCache

        cache = SolveCache(tmp_path)
        optimal_mechanism(
            4, 0.3, AbsoluteLoss(), space="factor", solve_cache=cache
        )
        result = optimal_mechanism(4, 0.3, AbsoluteLoss(), solve_cache=cache)
        assert cache.stats["misses"] == 2  # no cross-variant hit
        assert "factor" not in result.backend
        # Exact factor solves ARE certified x-space optima, so they do
        # legitimately share the x-space key.
        exact_cache = SolveCache(tmp_path / "exact")
        optimal_mechanism(
            4,
            Fraction(1, 3),
            AbsoluteLoss(),
            exact=True,
            space="factor",
            solve_cache=exact_cache,
        )
        shared = optimal_mechanism(
            4, Fraction(1, 3), AbsoluteLoss(), exact=True,
            solve_cache=exact_cache,
        )
        assert exact_cache.stats["hits"] == 1
        assert shared.backend == "factor-certified"

    def test_solve_factor_certified_full_pipeline(self):
        n, alpha = 4, Fraction(2, 5)
        table = loss_matrix(SquaredLoss(), n)
        members = list(range(n + 1))
        program, _ = build_optimal_lp(n, alpha, table, members)
        certified = solve_factor_certified(program, n, alpha, table, members)
        assert certified is not None
        assert certified.backend == "factor-certified"
        assert certified.objective == HybridBackend().solve(program).objective


class TestCertifySolution:
    def test_rejects_infeasible_candidate(self):
        program = build_optimal_lp(
            2, Fraction(1, 2), loss_matrix(AbsoluteLoss(), 2), [0, 1, 2]
        )[0]
        bogus = [Fraction(1)] * program.num_vars
        assert certify_solution(program, bogus) is None

    def test_rejects_suboptimal_candidate(self):
        n, alpha = 2, Fraction(1, 2)
        table = loss_matrix(AbsoluteLoss(), n)
        program, d_index = build_optimal_lp(n, alpha, table, [0, 1, 2])
        optimal = HybridBackend().solve(program)
        # The geometric mechanism itself is feasible (with a padded d)
        # but strictly worse than the bespoke optimum here? Not always -
        # instead, inflate d on the true optimum: feasible, suboptimal.
        values = list(optimal.values)
        values[d_index] = values[d_index] + 1
        assert certify_solution(program, values) is None

    def test_accepts_true_optimum(self):
        n, alpha = 3, Fraction(1, 4)
        table = loss_matrix(AbsoluteLoss(), n)
        program, _ = build_optimal_lp(n, alpha, table, [0, 1, 2, 3])
        optimal = HybridBackend().solve(program)
        certified = certify_solution(program, optimal.values)
        assert certified is not None
        assert certified.objective == optimal.objective

    def test_length_mismatch_raises(self):
        program = build_optimal_lp(
            2, Fraction(1, 2), loss_matrix(AbsoluteLoss(), 2), [0]
        )[0]
        with pytest.raises(ValidationError):
            certify_solution(program, [Fraction(0)])
