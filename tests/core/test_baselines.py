"""Tests for the baseline mechanisms used in comparison benches."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.baselines import (
    randomized_response_mechanism,
    truncated_laplace_mechanism,
)
from repro.core.privacy import is_differentially_private, tightest_alpha
from repro.exceptions import ValidationError


class TestTruncatedLaplace:
    @pytest.mark.parametrize("alpha", [0.2, 0.5, 0.8])
    def test_is_private_at_alpha(self, alpha):
        mechanism = truncated_laplace_mechanism(5, alpha)
        assert is_differentially_private(mechanism, alpha, atol=1e-9)

    def test_rows_are_distributions(self):
        mechanism = truncated_laplace_mechanism(4, 0.5)
        sums = mechanism.matrix.sum(axis=1)
        assert np.allclose(sums, 1.0)

    def test_mode_at_truth_away_from_boundary(self):
        # Near the boundary the absorbing tails can dominate the diagonal
        # cell; far enough inside, the mode is the true count.
        mechanism = truncated_laplace_mechanism(6, 0.5)
        for i in range(2, 5):
            row = mechanism.matrix[i]
            assert int(np.argmax(row)) == i

    def test_symmetric_in_reflection(self):
        mechanism = truncated_laplace_mechanism(4, 0.3)
        matrix = mechanism.matrix
        for i in range(5):
            for r in range(5):
                assert matrix[i, r] == pytest.approx(matrix[4 - i, 4 - r])

    def test_more_noise_for_more_privacy(self):
        loose = truncated_laplace_mechanism(4, 0.2)
        tight = truncated_laplace_mechanism(4, 0.8)
        assert loose.probability(2, 2) > tight.probability(2, 2)

    def test_bad_alpha(self):
        with pytest.raises(ValidationError):
            truncated_laplace_mechanism(4, 1.5)


class TestRandomizedResponse:
    def test_exactly_alpha_private(self):
        """The p we derive makes the privacy constraint exactly tight."""
        alpha = Fraction(1, 2)
        mechanism = randomized_response_mechanism(3, alpha)
        assert tightest_alpha(mechanism) == alpha

    @pytest.mark.parametrize("alpha", [Fraction(1, 4), Fraction(1, 2)])
    def test_private_at_level(self, alpha):
        mechanism = randomized_response_mechanism(4, alpha)
        assert is_differentially_private(mechanism, alpha)

    def test_exact_rows_sum_to_one(self):
        mechanism = randomized_response_mechanism(3, Fraction(1, 3))
        for i in range(4):
            assert sum(mechanism.distribution(i).tolist()) == 1

    def test_truth_probability_formula(self):
        alpha, n = Fraction(1, 2), 3
        mechanism = randomized_response_mechanism(n, alpha)
        size = n + 1
        p = (1 - alpha) / (alpha * size + 1 - alpha)
        assert mechanism.probability(1, 1) == p + (1 - p) / size

    def test_off_diagonal_uniform(self):
        mechanism = randomized_response_mechanism(3, Fraction(1, 2))
        row = mechanism.distribution(0)
        assert row[1] == row[2] == row[3]

    def test_float_mode(self):
        mechanism = randomized_response_mechanism(3, 0.5)
        assert not mechanism.is_exact
        assert tightest_alpha(mechanism) == pytest.approx(0.5)

    def test_geometric_beats_baselines_after_interaction(self, g3_half):
        """The domination the benchmarks quantify, in miniature."""
        from repro.core.interaction import optimal_interaction
        from repro.losses import AbsoluteLoss

        alpha = Fraction(1, 2)
        geometric_loss = optimal_interaction(
            g3_half, AbsoluteLoss(), exact=True
        ).loss
        rr = randomized_response_mechanism(3, alpha)
        rr_loss = optimal_interaction(rr, AbsoluteLoss(), exact=True).loss
        assert geometric_loss <= rr_loss
