"""Tests for the geometric mechanism (Definitions 1 and 4)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.geometric import (
    GeometricMechanism,
    UnboundedGeometricMechanism,
    column_scaling,
    geometric_matrix,
    geometric_noise_pmf,
    gprime_matrix,
)
from repro.core.privacy import is_differentially_private, tightest_alpha
from repro.exceptions import ValidationError
from repro.linalg.rational import RationalMatrix


class TestNoisePmf:
    def test_center_mass(self):
        # Pr[Z = 0] = (1 - a)/(1 + a).
        assert geometric_noise_pmf(Fraction(1, 2), 0) == Fraction(1, 3)

    def test_symmetry(self):
        for z in range(1, 6):
            assert geometric_noise_pmf(Fraction(1, 3), z) == geometric_noise_pmf(
                Fraction(1, 3), -z
            )

    def test_geometric_decay(self):
        alpha = Fraction(2, 5)
        for z in range(5):
            ratio = geometric_noise_pmf(alpha, z + 1) / geometric_noise_pmf(
                alpha, z
            )
            assert ratio == alpha

    def test_total_mass_is_one(self):
        alpha = Fraction(1, 2)
        # sum over |z| <= K plus closed-form tails = 1.
        mass = sum(geometric_noise_pmf(alpha, z) for z in range(-30, 31))
        tail = 2 * alpha**31 / (1 + alpha)
        assert mass + tail == 1

    def test_float_mode(self):
        assert geometric_noise_pmf(0.5, 0) == pytest.approx(1 / 3)

    def test_bad_alpha(self):
        with pytest.raises(ValidationError):
            geometric_noise_pmf(Fraction(5, 4), 0)


class TestGeometricMatrix:
    def test_paper_definition_entries(self):
        """Definition 4 verbatim: boundary 1/(1+a), interior (1-a)/(1+a)."""
        alpha = Fraction(1, 4)
        g = geometric_matrix(3, alpha)
        for i in range(4):
            for r in range(4):
                scale = (
                    1 / (1 + alpha)
                    if r in (0, 3)
                    else (1 - alpha) / (1 + alpha)
                )
                assert g[i, r] == scale * alpha ** abs(r - i)

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("alpha", [Fraction(1, 5), Fraction(1, 2), Fraction(7, 10)])
    def test_rows_sum_to_one_exactly(self, n, alpha):
        g = geometric_matrix(n, alpha)
        for i in range(n + 1):
            assert sum(g[i]) == 1

    def test_tail_collapse_equals_definition(self):
        """G's boundary mass equals the unbounded mechanism's tail mass."""
        alpha = Fraction(1, 3)
        n = 4
        g = geometric_matrix(n, alpha)
        unbounded = UnboundedGeometricMechanism(alpha)
        for i in range(n + 1):
            low_tail = sum(
                geometric_noise_pmf(alpha, z - i) for z in range(-60, 1)
            )
            # Compare against the closed form used by the matrix, with the
            # truncation remainder bounded analytically.
            remainder = alpha ** (i + 61) / (1 + alpha)
            assert g[i, 0] - low_tail == remainder

    def test_float_alpha_gives_float_matrix(self):
        g = geometric_matrix(2, 0.5)
        assert g.dtype == float

    def test_symmetric_under_reversal(self):
        """G[i, r] == G[n-i, n-r] — the mechanism has no directional bias."""
        g = geometric_matrix(4, Fraction(1, 3))
        for i in range(5):
            for r in range(5):
                assert g[i, r] == g[4 - i, 4 - r]

    @pytest.mark.parametrize("alpha", [Fraction(1, 5), Fraction(1, 2)])
    def test_exactly_alpha_private(self, alpha):
        g = geometric_matrix(3, alpha)
        assert is_differentially_private(g, alpha)
        assert tightest_alpha(g) == alpha


class TestGprime:
    def test_gprime_is_kms(self):
        gp = gprime_matrix(3, Fraction(1, 4))
        for i in range(4):
            for j in range(4):
                assert gp[i, j] == Fraction(1, 4) ** abs(i - j)

    def test_column_scaling_relation(self):
        """Table 2: G = G' @ diag(c)."""
        n, alpha = 4, Fraction(1, 3)
        g = RationalMatrix(geometric_matrix(n, alpha).tolist())
        gp = gprime_matrix(n, alpha)
        scaling = column_scaling(n, alpha)
        assert gp @ RationalMatrix.diagonal(scaling) == g

    def test_scaling_values(self):
        alpha = Fraction(1, 4)
        scaling = column_scaling(3, alpha)
        assert scaling[0] == scaling[3] == Fraction(4, 5)
        assert scaling[1] == scaling[2] == Fraction(3, 5)

    def test_gprime_requires_exact_alpha(self):
        with pytest.raises(ValidationError):
            gprime_matrix(3, 0.3)


class TestGeometricMechanism:
    def test_carries_alpha(self, g3_quarter):
        assert g3_quarter.alpha == Fraction(1, 4)

    def test_is_exact_for_fraction_alpha(self, g3_quarter):
        assert g3_quarter.is_exact

    def test_float_alpha(self):
        g = GeometricMechanism(3, 0.25)
        assert not g.is_exact
        assert g.probability(0, 0) == pytest.approx(0.8)

    def test_gprime_accessor(self, g3_quarter):
        assert g3_quarter.gprime() == gprime_matrix(3, Fraction(1, 4))

    def test_gprime_rejected_for_float(self):
        g = GeometricMechanism(3, 0.25)
        with pytest.raises(ValidationError):
            g.gprime()

    def test_table1b_entries(self, g3_quarter):
        """The exact values behind the paper's Table 1(b)."""
        assert g3_quarter.probability(0, 0) == Fraction(4, 5)
        assert g3_quarter.probability(0, 1) == Fraction(3, 20)
        assert g3_quarter.probability(1, 1) == Fraction(3, 5)
        assert g3_quarter.probability(3, 0) == Fraction(1, 80)


class TestUnboundedMechanism:
    def test_pmf_matches_noise(self):
        u = UnboundedGeometricMechanism(Fraction(1, 2))
        assert u.pmf(5, 5) == Fraction(1, 3)
        assert u.pmf(5, 7) == geometric_noise_pmf(Fraction(1, 2), 2)

    def test_tail_mass_closed_form(self):
        alpha = Fraction(1, 3)
        u = UnboundedGeometricMechanism(alpha)
        # Pr[output <= -1 | true 2] = alpha^3 / (1 + alpha).
        assert u.tail_mass(2, -1, upper=False) == alpha**3 / (1 + alpha)

    def test_tail_mass_matches_series(self):
        alpha = Fraction(1, 2)
        u = UnboundedGeometricMechanism(alpha)
        series = sum(u.pmf(0, z) for z in range(3, 200))
        closed = u.tail_mass(0, 3, upper=True)
        assert abs(float(series - closed)) < 1e-55

    def test_tail_mass_needs_strict_side(self):
        u = UnboundedGeometricMechanism(Fraction(1, 2))
        with pytest.raises(ValidationError):
            u.tail_mass(2, 2, upper=True)

    def test_range_restricted_matches_matrix(self):
        u = UnboundedGeometricMechanism(Fraction(1, 4))
        g = u.range_restricted(3)
        assert g == GeometricMechanism(3, Fraction(1, 4))

    def test_clamp(self):
        u = UnboundedGeometricMechanism(Fraction(1, 2))
        assert u.clamp(-3, 5) == 0
        assert u.clamp(9, 5) == 5
        assert u.clamp(2, 5) == 2

    def test_sample_clamped_matches_matrix_distribution(self, rng):
        """Sampling Definition 1 then clamping ~ sampling Definition 4."""
        alpha, n, true = 0.4, 3, 1
        u = UnboundedGeometricMechanism(alpha)
        draws = np.array(
            [u.clamp(u.sample(true, rng), n) for _ in range(40000)]
        )
        expected = geometric_matrix(n, alpha)[true]
        for r in range(n + 1):
            assert np.mean(draws == r) == pytest.approx(
                float(expected[r]), abs=0.01
            )
