"""Tests for Appendix A: obliviousness is without loss of generality."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.geometric import geometric_matrix
from repro.core.oblivious import (
    NonObliviousMechanism,
    database_neighbors,
    enumerate_databases,
    random_nonoblivious_mechanism,
)
from repro.core.privacy import is_differentially_private
from repro.exceptions import ValidationError
from repro.losses import AbsoluteLoss, SquaredLoss


def oblivious_rows(n: int, alpha) -> dict:
    """A non-oblivious wrapper around the (oblivious) geometric matrix."""
    g = geometric_matrix(n, alpha)
    return {d: g[sum(d)] for d in enumerate_databases(n)}


class TestDatabaseEnumeration:
    def test_count(self):
        assert len(enumerate_databases(3)) == 8

    def test_all_binary(self):
        assert set(enumerate_databases(2)) == {
            (0, 0), (0, 1), (1, 0), (1, 1)
        }

    def test_neighbors_flip_one_row(self):
        neighbors = list(database_neighbors((0, 1, 0)))
        assert (1, 1, 0) in neighbors
        assert (0, 0, 0) in neighbors
        assert (0, 1, 1) in neighbors
        assert len(neighbors) == 3


class TestNonObliviousMechanism:
    def test_requires_all_databases(self):
        rows = oblivious_rows(2, Fraction(1, 2))
        del rows[(0, 0)]
        with pytest.raises(ValidationError):
            NonObliviousMechanism(2, rows)

    def test_rejects_bad_distribution(self):
        rows = oblivious_rows(2, Fraction(1, 2))
        rows[(0, 0)] = np.array([0.5, 0.4, 0.0])
        with pytest.raises(ValidationError):
            NonObliviousMechanism(2, rows)

    def test_count(self):
        mech = NonObliviousMechanism(2, oblivious_rows(2, Fraction(1, 2)))
        assert mech.count((1, 1)) == 2
        assert mech.count((0, 1)) == 1

    def test_oblivious_wrapper_detected(self):
        mech = NonObliviousMechanism(2, oblivious_rows(2, Fraction(1, 2)))
        assert mech.is_oblivious()

    def test_oblivious_wrapper_is_private(self):
        alpha = Fraction(1, 2)
        mech = NonObliviousMechanism(2, oblivious_rows(2, alpha))
        assert mech.is_differentially_private(alpha, atol=0.0)


class TestRandomNonOblivious:
    def test_is_genuinely_nonoblivious(self, rng):
        mech = random_nonoblivious_mechanism(2, 0.5, rng)
        assert not mech.is_oblivious()

    def test_is_private(self, rng):
        alpha = 0.5
        mech = random_nonoblivious_mechanism(2, alpha, rng)
        assert mech.is_differentially_private(alpha, atol=0.0)

    def test_parameter_validation(self, rng):
        with pytest.raises(ValidationError):
            random_nonoblivious_mechanism(2, 0.5, rng, mix=0.0)
        with pytest.raises(ValidationError):
            random_nonoblivious_mechanism(2, 0.5, rng, jitter=1.5)


class TestLemma6:
    """The averaging construction: DP preserved, loss not increased."""

    def test_obliviate_produces_oblivious_mechanism(self, rng):
        mech = random_nonoblivious_mechanism(2, 0.5, rng)
        averaged = mech.obliviate()
        assert averaged.n == 2

    def test_privacy_preserved(self, rng):
        alpha = 0.5
        for _ in range(3):
            mech = random_nonoblivious_mechanism(2, alpha, rng)
            averaged = mech.obliviate()
            assert is_differentially_private(averaged, alpha, atol=1e-12)

    @pytest.mark.parametrize("loss", [AbsoluteLoss(), SquaredLoss()])
    def test_loss_not_increased(self, rng, loss):
        alpha = 0.5
        for _ in range(3):
            mech = random_nonoblivious_mechanism(3, alpha, rng)
            averaged = mech.obliviate()
            before = mech.worst_case_loss(loss)
            after = averaged.worst_case_loss(loss, range(4))
            assert float(after) <= float(before) + 1e-12

    def test_loss_with_side_information(self, rng):
        alpha = 0.5
        mech = random_nonoblivious_mechanism(2, alpha, rng)
        averaged = mech.obliviate()
        before = mech.worst_case_loss(AbsoluteLoss(), {1, 2})
        after = averaged.worst_case_loss(AbsoluteLoss(), {1, 2})
        assert float(after) <= float(before) + 1e-12

    def test_exact_averaging(self):
        """Averaging exact rows keeps exact arithmetic."""
        alpha = Fraction(1, 2)
        rows = oblivious_rows(2, alpha)
        # Perturb one database's row within DP limits, exactly.
        rows = dict(rows)
        rows[(0, 1)] = np.array(
            [Fraction(7, 24), Fraction(5, 12), Fraction(7, 24)], dtype=object
        )
        mech = NonObliviousMechanism(2, rows)
        averaged = mech.obliviate()
        assert averaged.is_exact
        # The count-1 class averages rows of (0,1) and (1,0).
        g = geometric_matrix(2, alpha)
        expected_middle = (Fraction(7, 24) + g[1][0]) / 2
        assert averaged.probability(1, 0) == expected_middle

    def test_objective_five_matches_paper_form(self, rng):
        """Objective (5): max over databases of the row's expected loss."""
        mech = random_nonoblivious_mechanism(2, 0.5, rng)
        table = AbsoluteLoss().matrix(2)
        expected = max(
            sum(
                table[mech.count(d), r] * mech.distribution(d)[r]
                for r in range(3)
            )
            for d in enumerate_databases(2)
        )
        assert float(mech.worst_case_loss(AbsoluteLoss())) == pytest.approx(
            float(expected)
        )
