"""Tests for Theorem 2: derivability from the geometric mechanism."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.counterexample import appendix_b_mechanism
from repro.core.derivability import (
    check_derivability,
    derivation_factor,
    derive_mechanism,
    is_derivable_from_geometric,
    privacy_chain_kernel,
)
from repro.core.geometric import GeometricMechanism
from repro.core.mechanism import Mechanism
from repro.exceptions import NotDerivableError, ValidationError
from repro.linalg.stochastic import is_generalized_stochastic, is_row_stochastic

ALPHAS = [Fraction(1, 5), Fraction(1, 4), Fraction(1, 2), Fraction(2, 3)]


class TestDerivationFactor:
    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_closed_form_equals_inverse_product(self, alpha):
        """T = G^{-1} M via the stencil == via explicit exact inversion."""
        n = 3
        g = GeometricMechanism(n, alpha)
        target = Mechanism.uniform(n)
        stencil = derivation_factor(target, alpha)
        explicit = (
            g.to_rational_matrix().inverse()
            @ target.to_rational_matrix()
        )
        assert (stencil == explicit.to_numpy()).all()

    def test_factor_of_self_is_identity(self, g3_quarter):
        factor = derivation_factor(g3_quarter, Fraction(1, 4))
        identity = Mechanism.identity(3).matrix
        assert (factor == identity).all()

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_row_sums_always_one(self, alpha, rng):
        """Stochastic-group fact: T always has unit row sums."""
        from repro.linalg.stochastic import random_stochastic_matrix

        m = random_stochastic_matrix(4, rng=rng, exact=True)
        factor = derivation_factor(m, alpha)
        assert is_generalized_stochastic(factor)

    def test_reconstruction_identity(self, g3_quarter):
        """G @ (G^{-1} M) == M whenever the factor exists."""
        target = Mechanism.uniform(3)
        factor = derivation_factor(target, Fraction(1, 4))
        product = np.dot(g3_quarter.matrix, factor)
        assert (product == target.matrix).all()

    def test_float_mode(self):
        g = GeometricMechanism(3, 0.25)
        factor = derivation_factor(Mechanism.uniform(3).to_float(), 0.25)
        product = g.matrix @ factor
        assert np.allclose(product, 0.25)

    def test_too_small_rejected(self):
        with pytest.raises(ValidationError):
            derivation_factor(np.array([[1.0]]), 0.5)


class TestCharacterizationTheorem:
    def test_uniform_derivable(self):
        """The fully-private mechanism is derivable from any G."""
        assert is_derivable_from_geometric(
            Mechanism.uniform(3), Fraction(1, 4)
        )

    def test_identity_not_derivable(self):
        """The noiseless mechanism cannot come from a noisy G."""
        assert not is_derivable_from_geometric(
            Mechanism.identity(3), Fraction(1, 4)
        )

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_post_processings_of_g_are_derivable(self, alpha, rng):
        """Anything of the form G @ T is derivable (sufficiency)."""
        from repro.linalg.stochastic import random_stochastic_matrix

        g = GeometricMechanism(3, alpha)
        for _ in range(5):
            kernel = random_stochastic_matrix(4, rng=rng, exact=True)
            induced = g.post_process(kernel)
            assert is_derivable_from_geometric(induced, alpha)

    def test_appendix_b_not_derivable(self, g3_half):
        assert not is_derivable_from_geometric(
            appendix_b_mechanism(), Fraction(1, 2)
        )

    def test_report_witness_location(self):
        report = check_derivability(appendix_b_mechanism(), Fraction(1, 2))
        assert not report.derivable
        assert report.witness == (1, 1)
        assert report.min_entry < 0

    def test_report_min_entry_nonnegative_when_derivable(self, g3_quarter):
        report = check_derivability(g3_quarter, Fraction(1, 4))
        assert report.derivable
        assert report.min_entry >= 0


class TestDeriveMechanism:
    def test_returns_stochastic_kernel(self, g3_quarter):
        kernel = derive_mechanism(Mechanism.uniform(3), Fraction(1, 4))
        assert is_row_stochastic(kernel)

    def test_raises_with_witness(self):
        with pytest.raises(NotDerivableError) as excinfo:
            derive_mechanism(appendix_b_mechanism(), Fraction(1, 2))
        assert excinfo.value.witness == (1, 1)
        assert "three-entry" in str(excinfo.value)

    def test_float_kernel_cleaned(self):
        g = GeometricMechanism(3, 0.25)
        kernel = derive_mechanism(Mechanism.uniform(3).to_float(), 0.25)
        assert is_row_stochastic(kernel)
        assert np.allclose(g.matrix @ kernel, 0.25, atol=1e-9)


class TestScaledFactorRows:
    def test_row_divisors_invert_column_scaling(self):
        """White-box: the stencil's row divisors are 1/c_r for the
        Table 2 column scaling c — the bridge between G and G'."""
        from repro.core.derivability import _scaled_factor_rows
        from repro.core.geometric import column_scaling

        alpha = Fraction(1, 3)
        divisors = _scaled_factor_rows(3, alpha)
        scaling = column_scaling(3, alpha)
        for divisor, factor in zip(divisors, scaling):
            assert divisor * factor == 1


class TestLemma3:
    """Adding privacy: G_beta derivable from G_alpha iff alpha <= beta."""

    @pytest.mark.parametrize(
        "alpha,beta",
        [
            (Fraction(1, 5), Fraction(1, 4)),
            (Fraction(1, 4), Fraction(1, 2)),
            (Fraction(1, 2), Fraction(9, 10)),
            (Fraction(1, 4), Fraction(3, 4)),
        ],
    )
    def test_kernel_exists_and_rebuilds_g_beta(self, alpha, beta):
        n = 3
        kernel = privacy_chain_kernel(n, alpha, beta)
        assert is_row_stochastic(kernel)
        product = np.dot(GeometricMechanism(n, alpha).matrix, kernel)
        assert (product == GeometricMechanism(n, beta).matrix).all()

    @pytest.mark.parametrize(
        "alpha,beta",
        [(Fraction(1, 2), Fraction(1, 4)), (Fraction(3, 4), Fraction(1, 2))],
    )
    def test_privacy_cannot_be_removed(self, alpha, beta):
        with pytest.raises(NotDerivableError):
            privacy_chain_kernel(3, alpha, beta)

    def test_equal_levels_give_identity(self):
        kernel = privacy_chain_kernel(3, Fraction(1, 3), Fraction(1, 3))
        assert (kernel == Mechanism.identity(3).matrix).all()

    def test_chain_composes(self):
        """T_{a,b} @ T_{b,c} == T_{a,c} — kernels compose transitively."""
        n = 2
        a, b, c = Fraction(1, 5), Fraction(1, 3), Fraction(1, 2)
        t_ab = privacy_chain_kernel(n, a, b)
        t_bc = privacy_chain_kernel(n, b, c)
        t_ac = privacy_chain_kernel(n, a, c)
        assert (np.dot(t_ab, t_bc) == t_ac).all()
