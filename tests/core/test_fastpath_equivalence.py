"""Equivalence tests for the vectorized fast paths.

The vectorized constructions and cached evaluation paths must be
indistinguishable from the loop-based originals: bit-identical Fractions
in the exact regime, ``allclose`` in the float regime.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.geometric import (
    GeometricMechanism,
    _geometric_matrix_loops,
    cached_geometric_mechanism,
    geometric_matrix,
    gprime_inverse,
    gprime_matrix,
)
from repro.core.mechanism import Mechanism
from repro.exceptions import ValidationError
from repro.linalg.toeplitz import kms_inverse
from repro.losses import (
    AbsoluteLoss,
    PowerLoss,
    SquaredLoss,
    ZeroOneLoss,
    cached_loss_matrix,
    loss_matrix,
)

EXACT_GRID = [
    (n, alpha)
    for n in (1, 2, 3, 5, 8, 13)
    for alpha in (Fraction(1, 5), Fraction(1, 4), Fraction(1, 2), Fraction(2, 3), Fraction(9, 10))
]
FLOAT_GRID = [
    (n, alpha)
    for n in (1, 2, 3, 7, 16, 33)
    for alpha in (0.1, 0.25, 0.5, 0.75, 0.95)
]


class TestGeometricMatrixEquivalence:
    @pytest.mark.parametrize("n,alpha", EXACT_GRID)
    def test_exact_bit_identical_to_loops(self, n, alpha):
        vectorized = geometric_matrix(n, alpha)
        loops = _geometric_matrix_loops(n, alpha)
        assert vectorized.dtype == object
        assert (vectorized == loops).all()
        assert all(isinstance(entry, Fraction) for entry in vectorized.flat)

    @pytest.mark.parametrize("n,alpha", FLOAT_GRID)
    def test_float_allclose_to_loops(self, n, alpha):
        vectorized = geometric_matrix(n, alpha)
        loops = _geometric_matrix_loops(n, alpha)
        assert vectorized.dtype == float
        assert np.allclose(vectorized, loops, rtol=0.0, atol=1e-15)

    @pytest.mark.parametrize("n,alpha", EXACT_GRID)
    def test_exact_rows_sum_to_one(self, n, alpha):
        matrix = geometric_matrix(n, alpha)
        assert all(sum(row) == 1 for row in matrix)

    def test_float_rows_sum_to_one_at_scale(self):
        matrix = geometric_matrix(512, 0.5)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_int_alpha_rejected_by_range_check(self):
        with pytest.raises(ValidationError):
            geometric_matrix(3, 1)


class TestCachedGeometricMechanism:
    def test_shared_instance_per_key(self):
        first = cached_geometric_mechanism(4, Fraction(1, 3))
        second = cached_geometric_mechanism(4, Fraction(1, 3))
        assert first is second

    def test_distinct_keys_distinct_instances(self):
        exact = cached_geometric_mechanism(4, Fraction(1, 2))
        floaty = cached_geometric_mechanism(4, 0.5)
        assert exact is not floaty
        assert exact.is_exact and not floaty.is_exact

    def test_matches_direct_construction(self):
        cached = cached_geometric_mechanism(5, Fraction(1, 4))
        direct = GeometricMechanism(5, Fraction(1, 4))
        assert cached == direct


class TestGprimeInverse:
    @pytest.mark.parametrize("n", [1, 2, 3, 6])
    def test_matches_kms_inverse(self, n):
        alpha = Fraction(2, 5)
        assert gprime_inverse(n, alpha) == kms_inverse(n + 1, alpha)

    def test_is_a_true_inverse(self):
        alpha = Fraction(1, 3)
        product = gprime_matrix(4, alpha) @ gprime_inverse(4, alpha)
        assert product.is_identity()

    def test_cached_instance_shared(self):
        assert gprime_inverse(3, Fraction(1, 7)) is gprime_inverse(
            3, Fraction(1, 7)
        )

    def test_mechanism_method_requires_exact(self):
        with pytest.raises(ValidationError):
            GeometricMechanism(3, 0.5).gprime_inverse()
        exact = GeometricMechanism(3, Fraction(1, 2))
        assert exact.gprime_inverse() == kms_inverse(4, Fraction(1, 2))


class TestCachedLossMatrix:
    def test_object_table_cached_and_read_only(self):
        loss = AbsoluteLoss()
        first = cached_loss_matrix(loss, 6)
        second = cached_loss_matrix(loss, 6)
        assert first is second
        assert not first.flags.writeable
        assert (first == loss_matrix(loss, 6)).all()

    def test_float_table_matches_object_table(self):
        for loss in (AbsoluteLoss(), SquaredLoss(), ZeroOneLoss(), PowerLoss(3)):
            table = cached_loss_matrix(loss, 9, as_float=True)
            reference = np.asarray(loss_matrix(loss, 9), dtype=float)
            assert table.dtype == float
            assert np.allclose(table, reference, rtol=0.0, atol=0.0)

    def test_explicit_matrices_only_normalized(self):
        # Explicit matrices pass through loss_matrix untouched (asarray
        # on an ndarray is a no-op) and never enter the cache.
        explicit = loss_matrix(AbsoluteLoss(), 3)
        normalized = cached_loss_matrix(explicit, 3)
        assert normalized is explicit
        assert normalized.flags.writeable

    def test_loss_matrix_still_returns_fresh_arrays(self):
        loss = AbsoluteLoss()
        table = loss_matrix(loss, 4)
        table[0, 0] = 99  # mutating a fresh table must not poison the cache
        assert cached_loss_matrix(loss, 4)[0, 0] == 0


class TestLossEvaluationFastPath:
    def _reference_expected_loss(self, mechanism, loss, i):
        table = loss_matrix(loss, mechanism.n)
        matrix = mechanism.matrix
        return sum(table[i, r] * matrix[i, r] for r in range(mechanism.size))

    @pytest.mark.parametrize("loss", [AbsoluteLoss(), SquaredLoss(), ZeroOneLoss()])
    def test_exact_expected_loss_bit_identical(self, loss):
        mechanism = GeometricMechanism(6, Fraction(1, 3))
        for i in range(mechanism.size):
            expected = self._reference_expected_loss(mechanism, loss, i)
            got = mechanism.expected_loss(loss, i)
            assert got == expected
            assert isinstance(got, Fraction)

    @pytest.mark.parametrize("loss", [AbsoluteLoss(), SquaredLoss(), ZeroOneLoss()])
    def test_float_expected_loss_allclose(self, loss):
        mechanism = GeometricMechanism(16, 0.4)
        for i in range(mechanism.size):
            expected = float(self._reference_expected_loss(mechanism, loss, i))
            assert mechanism.expected_loss(loss, i) == pytest.approx(expected)

    def test_exact_worst_case_loss_matches_rowwise_max(self):
        mechanism = GeometricMechanism(5, Fraction(1, 2))
        loss = AbsoluteLoss()
        reference = max(
            self._reference_expected_loss(mechanism, loss, i)
            for i in range(mechanism.size)
        )
        assert mechanism.worst_case_loss(loss) == reference

    def test_float_worst_case_loss_matches_rowwise_max(self):
        mechanism = GeometricMechanism(24, 0.6)
        loss = SquaredLoss()
        reference = max(
            float(self._reference_expected_loss(mechanism, loss, i))
            for i in range(mechanism.size)
        )
        assert mechanism.worst_case_loss(loss) == pytest.approx(reference)

    def test_float_worst_case_respects_side_information(self):
        mechanism = GeometricMechanism(10, 0.5)
        loss = AbsoluteLoss()
        members = [0, 5, 10]
        reference = max(
            float(self._reference_expected_loss(mechanism, loss, i))
            for i in members
        )
        assert mechanism.worst_case_loss(loss, members) == pytest.approx(
            reference
        )

    def test_worst_case_rejects_empty_side_information(self):
        mechanism = GeometricMechanism(4, 0.5)
        with pytest.raises(ValidationError):
            mechanism.worst_case_loss(AbsoluteLoss(), [])

    def test_explicit_loss_matrix_still_accepted(self):
        mechanism = Mechanism(np.full((4, 4), 0.25))
        table = np.arange(16.0).reshape(4, 4)
        reference = max(
            float((table[i] * 0.25).sum()) for i in range(4)
        )
        assert mechanism.worst_case_loss(table) == pytest.approx(reference)
