"""Tests for the plain-text reports."""

from fractions import Fraction

import pytest

from repro.analysis.report import (
    render_figure1,
    render_table1,
    render_table2,
)
from repro.analysis.tables import reproduce_table1, reproduce_table2


@pytest.fixture(scope="module")
def table1_text():
    return render_table1(reproduce_table1())


class TestRenderTable1(object):
    def test_mentions_all_panels(self, table1_text):
        for marker in ("(a)", "(b)", "(c)"):
            assert marker in table1_text

    def test_shows_exact_optimal_loss(self, table1_text):
        assert "168/415" in table1_text

    def test_shows_printed_values(self, table1_text):
        assert "9/11" in table1_text  # the paper's kernel corner
        assert "4/3" in table1_text  # the paper's scaled (b)

    def test_reports_zero_gap(self, table1_text):
        assert "universality gap" in table1_text
        assert table1_text.rstrip().endswith("0")


class TestRenderTable2:
    def test_contains_both_matrices(self):
        text = render_table2(reproduce_table2(2, Fraction(1, 2)))
        assert "G_{n,alpha}" in text
        assert "G'" in text
        assert "det G'" in text

    def test_reports_identity_status(self):
        text = render_table2(reproduce_table2(2, Fraction(1, 2)))
        assert "True" in text


class TestRenderFigure1:
    def test_header_mentions_parameters(self):
        text = render_figure1()
        assert "Figure 1" in text
        assert "result=5" in text

    def test_contains_bars(self):
        assert "#" in render_figure1()
