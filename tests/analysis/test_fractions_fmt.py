"""Tests for fraction/matrix rendering."""

from fractions import Fraction

import numpy as np

from repro.analysis.fractions_fmt import (
    format_matrix,
    format_value,
    nearest_fractions,
)
from repro.core.mechanism import Mechanism


class TestFormatValue:
    def test_fraction(self):
        assert format_value(Fraction(2, 3)) == "2/3"

    def test_integral_fraction(self):
        assert format_value(Fraction(4, 2)) == "2"

    def test_int(self):
        assert format_value(3) == "3"

    def test_float(self):
        assert format_value(0.25) == "0.250000"

    def test_limit_denominator(self):
        assert format_value(
            Fraction(333, 1000), max_denominator=3
        ) == "1/3"


class TestFormatMatrix:
    def test_exact_grid(self):
        text = format_matrix(
            np.array(
                [[Fraction(1, 2), Fraction(1, 2)], [Fraction(1), Fraction(0)]],
                dtype=object,
            )
        )
        assert "1/2" in text
        assert text.count("\n") == 1

    def test_accepts_mechanism(self, g3_quarter):
        text = format_matrix(g3_quarter)
        assert "4/5" in text

    def test_columns_aligned(self):
        text = format_matrix(
            np.array([[Fraction(1, 100), Fraction(1)], [Fraction(1), Fraction(1)]], dtype=object)
        )
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[1])


class TestNearestFractions:
    def test_recovers_simple_fractions(self):
        floats = np.array([[1 / 3, 2 / 3], [0.25, 0.75]])
        exact = nearest_fractions(floats, max_denominator=10)
        assert exact[0, 0] == Fraction(1, 3)
        assert exact[1, 1] == Fraction(3, 4)

    def test_round_trip_on_mechanism(self):
        m = Mechanism([[0.5, 0.5], [0.2, 0.8]])
        exact = nearest_fractions(m, max_denominator=10)
        assert exact[1, 0] == Fraction(1, 5)
