"""Tests for the universality sweeps."""

from fractions import Fraction

import pytest

from repro.analysis.sweeps import (
    bayesian_universality_sweep,
    universality_sweep,
)
from repro.exceptions import ValidationError
from repro.losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss


class TestUniversalitySweep:
    def test_exact_sweep_all_hold(self):
        cases = [
            (2, Fraction(1, 2), AbsoluteLoss(), None),
            (2, Fraction(1, 2), SquaredLoss(), {0, 2}),
            (3, Fraction(1, 4), ZeroOneLoss(), {1, 2, 3}),
        ]
        records = universality_sweep(cases, exact=True)
        assert len(records) == 3
        assert all(record.holds for record in records)
        assert all(record.gap == 0 for record in records)

    def test_float_sweep_all_hold(self):
        cases = [
            (3, 0.5, AbsoluteLoss(), None),
            (4, 0.3, SquaredLoss(), {1, 2, 3}),
        ]
        records = universality_sweep(cases, exact=False)
        assert all(record.holds for record in records)

    def test_records_carry_metadata(self):
        records = universality_sweep(
            [(2, Fraction(1, 2), AbsoluteLoss(), {0, 1})], exact=True
        )
        record = records[0]
        assert record.n == 2
        assert record.side_information == (0, 1)
        assert "AbsoluteLoss" in record.loss_name

    def test_rejects_non_lossfunction(self):
        with pytest.raises(ValidationError):
            universality_sweep([(2, Fraction(1, 2), "abs", None)])


class TestParallelSweep:
    CASES = [
        (n, Fraction(1, den), loss, side)
        for n in (2, 3)
        for den in (2, 4)
        for loss in (AbsoluteLoss(), SquaredLoss())
        for side in (None, {0, 1})
    ]

    def test_workers_records_bit_identical_to_serial(self):
        serial = universality_sweep(self.CASES, exact=True)
        parallel = universality_sweep(self.CASES, exact=True, workers=3)
        assert parallel == serial
        assert all(record.holds for record in parallel)

    def test_workers_merge_into_shared_cache(self):
        cache: dict = {}
        universality_sweep(self.CASES, exact=True, workers=2, cache=cache)
        assert cache  # chunks merged back
        # A second sweep over the same grid must not re-solve anything:
        # poisoning the solver would surface if any cell were recomputed.
        before = dict(cache)
        again = universality_sweep(
            self.CASES, exact=True, workers=2, cache=cache
        )
        assert cache == before
        assert again == universality_sweep(self.CASES, exact=True)

    def test_workers_one_is_serial_path(self):
        assert universality_sweep(
            self.CASES[:4], exact=True, workers=1
        ) == universality_sweep(self.CASES[:4], exact=True)

    def test_bayesian_workers_identical(self):
        uniform3 = [Fraction(1, 3)] * 3
        skewed = [Fraction(1, 2), Fraction(1, 3), Fraction(1, 6)]
        cases = [
            (2, Fraction(1, 2), AbsoluteLoss(), uniform3),
            (2, Fraction(1, 2), SquaredLoss(), skewed),
            (2, Fraction(1, 4), AbsoluteLoss(), skewed),
        ]
        serial = bayesian_universality_sweep(cases, exact=True)
        parallel = bayesian_universality_sweep(cases, exact=True, workers=2)
        assert parallel == serial


class TestBayesianSweep:
    def test_exact_sweep_all_hold(self):
        uniform3 = [Fraction(1, 3)] * 3
        skewed = [Fraction(1, 2), Fraction(1, 3), Fraction(1, 6)]
        cases = [
            (2, Fraction(1, 2), AbsoluteLoss(), uniform3),
            (2, Fraction(1, 2), SquaredLoss(), skewed),
        ]
        records = bayesian_universality_sweep(cases, exact=True)
        assert all(record.holds for record in records)
        assert all(record.gap == 0 for record in records)

    def test_float_sweep(self):
        records = bayesian_universality_sweep(
            [(3, 0.4, AbsoluteLoss(), [0.25] * 4)], exact=False
        )
        assert records[0].holds
