"""Tests for the universality sweeps."""

from fractions import Fraction

import pytest

from repro.analysis.sweeps import (
    bayesian_universality_sweep,
    universality_sweep,
)
from repro.exceptions import ValidationError
from repro.losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss


class TestUniversalitySweep:
    def test_exact_sweep_all_hold(self):
        cases = [
            (2, Fraction(1, 2), AbsoluteLoss(), None),
            (2, Fraction(1, 2), SquaredLoss(), {0, 2}),
            (3, Fraction(1, 4), ZeroOneLoss(), {1, 2, 3}),
        ]
        records = universality_sweep(cases, exact=True)
        assert len(records) == 3
        assert all(record.holds for record in records)
        assert all(record.gap == 0 for record in records)

    def test_float_sweep_all_hold(self):
        cases = [
            (3, 0.5, AbsoluteLoss(), None),
            (4, 0.3, SquaredLoss(), {1, 2, 3}),
        ]
        records = universality_sweep(cases, exact=False)
        assert all(record.holds for record in records)

    def test_records_carry_metadata(self):
        records = universality_sweep(
            [(2, Fraction(1, 2), AbsoluteLoss(), {0, 1})], exact=True
        )
        record = records[0]
        assert record.n == 2
        assert record.side_information == (0, 1)
        assert "AbsoluteLoss" in record.loss_name

    def test_rejects_non_lossfunction(self):
        with pytest.raises(ValidationError):
            universality_sweep([(2, Fraction(1, 2), "abs", None)])


class TestParallelSweep:
    CASES = [
        (n, Fraction(1, den), loss, side)
        for n in (2, 3)
        for den in (2, 4)
        for loss in (AbsoluteLoss(), SquaredLoss())
        for side in (None, {0, 1})
    ]

    def test_workers_records_bit_identical_to_serial(self):
        serial = universality_sweep(self.CASES, exact=True)
        parallel = universality_sweep(self.CASES, exact=True, workers=3)
        assert parallel == serial
        assert all(record.holds for record in parallel)

    def test_workers_merge_into_shared_cache(self):
        cache: dict = {}
        universality_sweep(self.CASES, exact=True, workers=2, cache=cache)
        assert cache  # chunks merged back
        # A second sweep over the same grid must not re-solve anything:
        # poisoning the solver would surface if any cell were recomputed.
        before = dict(cache)
        again = universality_sweep(
            self.CASES, exact=True, workers=2, cache=cache
        )
        assert cache == before
        assert again == universality_sweep(self.CASES, exact=True)

    def test_workers_one_is_serial_path(self):
        assert universality_sweep(
            self.CASES[:4], exact=True, workers=1
        ) == universality_sweep(self.CASES[:4], exact=True)

    def test_bayesian_workers_identical(self):
        uniform3 = [Fraction(1, 3)] * 3
        skewed = [Fraction(1, 2), Fraction(1, 3), Fraction(1, 6)]
        cases = [
            (2, Fraction(1, 2), AbsoluteLoss(), uniform3),
            (2, Fraction(1, 2), SquaredLoss(), skewed),
            (2, Fraction(1, 4), AbsoluteLoss(), skewed),
        ]
        serial = bayesian_universality_sweep(cases, exact=True)
        parallel = bayesian_universality_sweep(cases, exact=True, workers=2)
        assert parallel == serial


class TestPersistentSolveCache:
    CASES = [
        (n, Fraction(1, den), loss, side)
        for n in (2, 3)
        for den in (2, 3)
        for loss in (AbsoluteLoss(), SquaredLoss())
        for side in (None, {0, 1})
    ]

    def test_warm_rerun_performs_zero_lp_solves(self, tmp_path):
        from repro.solvers.cache import SolveCache

        cold_cache = SolveCache(tmp_path)
        cold = universality_sweep(
            self.CASES, exact=True, solve_cache=cold_cache
        )
        assert cold_cache.stats["misses"] > 0
        assert cold_cache.stats["stores"] == cold_cache.stats["misses"]
        warm_cache = SolveCache(tmp_path)
        warm = universality_sweep(
            self.CASES, exact=True, solve_cache=warm_cache
        )
        assert warm_cache.stats["misses"] == 0
        assert warm_cache.stats["hits"] > 0
        assert warm == cold

    def test_cache_dir_spelling(self, tmp_path):
        first = universality_sweep(
            self.CASES[:4], exact=True, cache_dir=tmp_path
        )
        assert any(tmp_path.rglob("*.json"))
        again = universality_sweep(
            self.CASES[:4], exact=True, cache_dir=tmp_path
        )
        assert again == first

    def test_workers_share_cache_directory(self, tmp_path):
        from repro.solvers.cache import SolveCache

        universality_sweep(
            self.CASES, exact=True, workers=2, cache_dir=tmp_path
        )
        assert any(tmp_path.rglob("*.json"))  # workers wrote entries
        warm_cache = SolveCache(tmp_path)
        warm = universality_sweep(
            self.CASES, exact=True, solve_cache=warm_cache
        )
        assert warm_cache.stats["misses"] == 0
        assert warm == universality_sweep(self.CASES, exact=True)

    def test_records_identical_with_and_without_cache(self, tmp_path):
        cached = universality_sweep(
            self.CASES, exact=True, cache_dir=tmp_path
        )
        plain = universality_sweep(self.CASES, exact=True, solve_cache=False)
        assert cached == plain

    def test_bayesian_sweep_uses_cache(self, tmp_path):
        from repro.solvers.cache import SolveCache

        uniform3 = [Fraction(1, 3)] * 3
        cases = [
            (2, Fraction(1, 2), AbsoluteLoss(), uniform3),
            (2, Fraction(1, 3), SquaredLoss(), uniform3),
        ]
        cold_cache = SolveCache(tmp_path)
        cold = bayesian_universality_sweep(
            cases, exact=True, solve_cache=cold_cache
        )
        assert cold_cache.stats["stores"] > 0
        warm_cache = SolveCache(tmp_path)
        warm = bayesian_universality_sweep(
            cases, exact=True, solve_cache=warm_cache
        )
        assert warm_cache.stats["misses"] == 0
        assert warm == cold


class TestFactorSpaceSweep:
    def test_factor_space_records_match_x_space(self):
        cases = [
            (2, Fraction(1, 2), AbsoluteLoss(), None),
            (3, Fraction(1, 4), SquaredLoss(), {0, 2, 3}),
            (3, Fraction(1, 3), ZeroOneLoss(), None),
        ]
        factor = universality_sweep(cases, exact=True, space="factor")
        plain = universality_sweep(cases, exact=True)
        assert factor == plain
        assert all(record.holds for record in factor)

    def test_cell_cache_is_space_scoped(self):
        """A shared cache= dict must not serve x-space cells to a
        factor-space sweep (float factor solves are uncertified)."""
        cases = [(3, Fraction(1, 4), AbsoluteLoss(), None)]
        shared: dict = {}
        universality_sweep(cases, exact=True, cache=shared, space="x")
        assert len(shared) == 1
        universality_sweep(cases, exact=True, cache=shared, space="factor")
        assert len(shared) == 2  # distinct key, recomputed


class TestBayesianSweep:
    def test_exact_sweep_all_hold(self):
        uniform3 = [Fraction(1, 3)] * 3
        skewed = [Fraction(1, 2), Fraction(1, 3), Fraction(1, 6)]
        cases = [
            (2, Fraction(1, 2), AbsoluteLoss(), uniform3),
            (2, Fraction(1, 2), SquaredLoss(), skewed),
        ]
        records = bayesian_universality_sweep(cases, exact=True)
        assert all(record.holds for record in records)
        assert all(record.gap == 0 for record in records)

    def test_float_sweep(self):
        records = bayesian_universality_sweep(
            [(3, 0.4, AbsoluteLoss(), [0.25] * 4)], exact=False
        )
        assert records[0].holds
