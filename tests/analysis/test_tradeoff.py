"""Tests for privacy-utility trade-off analysis."""

from fractions import Fraction

import pytest

from repro.analysis.tradeoff import (
    tradeoff_curve,
    value_of_rationality,
)
from repro.exceptions import ValidationError
from repro.losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss

ALPHAS = [Fraction(1, 5), Fraction(2, 5), Fraction(3, 5), Fraction(4, 5)]


class TestTradeoffCurve:
    def test_points_sorted_by_alpha(self):
        points = tradeoff_curve(3, reversed(ALPHAS), AbsoluteLoss())
        assert [p.alpha for p in points] == ALPHAS

    def test_loss_monotone_in_privacy(self):
        """More privacy (larger alpha) never improves optimal utility."""
        points = tradeoff_curve(3, ALPHAS, AbsoluteLoss())
        losses = [p.optimal_loss for p in points]
        assert losses == sorted(losses)

    def test_epsilon_decreasing_along_curve(self):
        points = tradeoff_curve(2, ALPHAS, ZeroOneLoss())
        epsilons = [p.epsilon for p in points]
        assert epsilons == sorted(epsilons, reverse=True)

    def test_side_information_lowers_the_whole_curve(self):
        full = tradeoff_curve(3, ALPHAS, SquaredLoss())
        informed = tradeoff_curve(3, ALPHAS, SquaredLoss(), {1, 2})
        for a, b in zip(informed, full):
            assert a.optimal_loss <= b.optimal_loss

    def test_empty_alphas_rejected(self):
        with pytest.raises(ValidationError):
            tradeoff_curve(3, [], AbsoluteLoss())

    def test_float_mode(self):
        points = tradeoff_curve(3, [0.25, 0.5], AbsoluteLoss(), exact=False)
        assert points[0].optimal_loss <= points[1].optimal_loss + 1e-9


class TestValueOfRationality:
    def test_improvement_nonnegative(self):
        record = value_of_rationality(3, Fraction(1, 2), AbsoluteLoss())
        assert record.improvement >= 0
        assert record.rational_loss + record.improvement == (
            record.face_value_loss
        )

    def test_side_information_makes_rationality_pay(self):
        """With a known lower bound, re-interpretation strictly helps."""
        record = value_of_rationality(
            3, Fraction(1, 2), AbsoluteLoss(), {2, 3}
        )
        assert record.improvement > 0

    def test_rational_loss_is_theorem1_loss(self):
        from repro.core.optimal import optimal_mechanism

        record = value_of_rationality(3, Fraction(1, 2), SquaredLoss())
        bespoke = optimal_mechanism(3, Fraction(1, 2), SquaredLoss(), exact=True)
        assert record.rational_loss == bespoke.loss

    def test_alpha_validated(self):
        with pytest.raises(ValidationError):
            value_of_rationality(3, Fraction(3, 2), AbsoluteLoss())
