"""Tests for Table 1 / Table 2 reproduction."""

from fractions import Fraction

import numpy as np
import pytest

from repro.analysis.tables import (
    PAPER_TABLE1_B,
    PAPER_TABLE1_C,
    reproduce_table1,
    reproduce_table2,
)
from repro.core.privacy import is_differentially_private


@pytest.fixture(scope="module")
def table1():
    return reproduce_table1()


class TestTable1:
    def test_universality_gap_is_exactly_zero(self, table1):
        """Theorem 1 on the paper's own illustration instance."""
        assert table1.universality_gap == 0

    def test_optimal_loss_value(self, table1):
        assert table1.optimal_loss == Fraction(168, 415)

    def test_paper_scaled_geometric_matches_printed_table(self, table1):
        """Our G x (1+a)/(1-a) equals Table 1(b) entry-for-entry."""
        assert (table1.geometric_paper_scaled == PAPER_TABLE1_B).all()

    def test_factorization_rebuilds_optimum(self, table1):
        """(b) x (factor) == (a): the paper's central factorization."""
        product = np.dot(table1.geometric.matrix, table1.factorization_kernel)
        assert (product == table1.optimal.matrix).all()

    def test_interaction_induces_an_optimal_mechanism(self, table1):
        """G composed with the measured (c) achieves the optimal loss."""
        assert table1.interaction_loss == table1.optimal_loss

    def test_measured_kernel_support_matches_paper(self, table1):
        """Same sparsity pattern as the printed (c): only the corner rows
        randomize, and only toward the adjacent interior output."""
        kernel = table1.interaction_kernel
        paper = PAPER_TABLE1_C
        for i in range(4):
            for j in range(4):
                assert (kernel[i, j] == 0) == (paper[i, j] == 0)

    def test_paper_kernel_is_near_optimal(self, table1):
        """The paper's printed (c) is a rounded version of the optimum;
        its loss is within half a percent of optimal."""
        ratio = float(table1.paper_kernel_loss / table1.optimal_loss)
        assert 1.0 <= ratio < 1.005

    def test_optimal_is_private(self, table1):
        assert is_differentially_private(table1.optimal, Fraction(1, 4))

    def test_induced_equals_geometric_times_kernel(self, table1):
        rebuilt = table1.geometric.post_process(table1.interaction_kernel)
        assert rebuilt == table1.induced


class TestTable2:
    def test_scaling_identity(self):
        repro = reproduce_table2(3, Fraction(1, 4))
        assert repro.scaling_identity_holds

    def test_determinant_identity(self):
        repro = reproduce_table2(4, Fraction(1, 3))
        assert repro.gprime_determinant == repro.gprime_determinant_formula

    @pytest.mark.parametrize("n", [1, 2, 5])
    @pytest.mark.parametrize("alpha", [Fraction(1, 5), Fraction(1, 2)])
    def test_parameterized_instances(self, n, alpha):
        repro = reproduce_table2(n, alpha)
        assert repro.scaling_identity_holds
        assert repro.gprime_determinant == (1 - alpha**2) ** n

    def test_gprime_entries(self):
        repro = reproduce_table2(2, Fraction(1, 2))
        assert repro.gprime[0, 2] == Fraction(1, 4)
