"""Tests for Figure 1 reproduction."""

from fractions import Fraction

import pytest

from repro.analysis.figures import ascii_plot, figure1_series
from repro.exceptions import ValidationError


class TestFigure1Series:
    def test_default_parameters_match_paper(self):
        series = figure1_series()
        xs = [x for x, _ in series]
        assert xs[0] == -20
        assert xs[-1] == 20
        assert len(series) == 41

    def test_peak_at_true_result(self):
        series = dict(figure1_series())
        assert max(series, key=series.get) == 5

    def test_peak_value(self):
        """Pr[output = 5] = (1 - 0.2)/(1 + 0.2) = 2/3."""
        series = dict(figure1_series())
        assert series[5] == Fraction(2, 3)

    def test_exact_decay_ratio(self):
        series = dict(figure1_series())
        assert series[6] / series[5] == Fraction(1, 5)
        assert series[4] / series[5] == Fraction(1, 5)

    def test_symmetric_around_center(self):
        series = dict(figure1_series())
        for offset in range(1, 10):
            assert series[5 - offset] == series[5 + offset]

    def test_custom_parameters(self):
        series = figure1_series(Fraction(1, 2), center=0, low=-3, high=3)
        assert dict(series)[0] == Fraction(1, 3)

    def test_bad_range(self):
        with pytest.raises(ValidationError):
            figure1_series(low=5, high=4)


class TestAsciiPlot:
    def test_contains_every_x(self):
        plot = ascii_plot(figure1_series(low=-3, high=3))
        for x in range(-3, 4):
            assert f"{x:>5}" in plot

    def test_peak_has_longest_bar(self):
        plot = ascii_plot(figure1_series(), width=40)
        lines = plot.splitlines()[1:]
        bars = {
            int(line.split()[0]): line.count("#") for line in lines
        }
        assert bars[5] == max(bars.values())

    def test_empty_series_rejected(self):
        with pytest.raises(ValidationError):
            ascii_plot([])

    def test_width_validation(self):
        with pytest.raises(ValidationError):
            ascii_plot(figure1_series(), width=2)
