"""Tests for side information."""

import pytest

from repro.agents.side_information import SideInformation
from repro.exceptions import SideInformationError


class TestConstruction:
    def test_basic(self):
        s = SideInformation([2, 0, 2], n=3)
        assert s.members == (0, 2)

    def test_empty_rejected(self):
        with pytest.raises(SideInformationError):
            SideInformation([], n=3)

    def test_out_of_range_rejected(self):
        with pytest.raises(SideInformationError):
            SideInformation([4], n=3)
        with pytest.raises(SideInformationError):
            SideInformation([-1], n=3)

    def test_full(self):
        s = SideInformation.full(3)
        assert s.members == (0, 1, 2, 3)
        assert s.is_trivial

    def test_interval(self):
        s = SideInformation.interval(1, 2, n=5)
        assert s.members == (1, 2)
        assert not s.is_trivial

    def test_interval_empty_rejected(self):
        with pytest.raises(SideInformationError):
            SideInformation.interval(3, 2, n=5)

    def test_at_least(self):
        """The drug company's bound from Example 1: S = {l..n}."""
        s = SideInformation.at_least(3, n=5)
        assert s.members == (3, 4, 5)

    def test_at_most(self):
        """A population upper bound: S = {0..high}."""
        s = SideInformation.at_most(2, n=5)
        assert s.members == (0, 1, 2)


class TestProtocol:
    def test_contains(self):
        s = SideInformation([1, 3], n=4)
        assert 1 in s
        assert 2 not in s

    def test_iteration_sorted(self):
        assert list(SideInformation([3, 1], n=4)) == [1, 3]

    def test_len(self):
        assert len(SideInformation([1, 2, 3], n=4)) == 3

    def test_equality_and_hash(self):
        a = SideInformation([1, 2], n=4)
        b = SideInformation([2, 1], n=4)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_across_n(self):
        assert SideInformation([1], n=2) != SideInformation([1], n=3)

    def test_repr_interval(self):
        assert "1..3" in repr(SideInformation.interval(1, 3, n=5))


class TestIntersect:
    def test_combines_bounds(self):
        lower = SideInformation.at_least(2, n=6)
        upper = SideInformation.at_most(4, n=6)
        combined = lower.intersect(upper)
        assert combined.members == (2, 3, 4)

    def test_contradictory_rejected(self):
        lower = SideInformation.at_least(5, n=6)
        upper = SideInformation.at_most(2, n=6)
        with pytest.raises(SideInformationError):
            lower.intersect(upper)

    def test_mismatched_ranges_rejected(self):
        with pytest.raises(SideInformationError):
            SideInformation.full(3).intersect(SideInformation.full(4))
