"""Tests for the rational-interaction pipeline."""

from fractions import Fraction

from repro.agents.minimax import MinimaxAgent
from repro.agents.rationality import interact_and_report, tailored_loss
from repro.losses import AbsoluteLoss


class TestTailoredLoss:
    def test_matches_interaction_result(self, g3_quarter):
        agent = MinimaxAgent(AbsoluteLoss(), [1, 2], n=3)
        direct = agent.best_interaction(g3_quarter, exact=True).loss
        assert tailored_loss(agent, g3_quarter, exact=True) == direct

    def test_theorem1_statement(self, g3_quarter):
        agent = MinimaxAgent(AbsoluteLoss(), None, n=3)
        assert tailored_loss(agent, g3_quarter, exact=True) == (
            agent.bespoke_mechanism(Fraction(1, 4), exact=True).loss
        )


class TestInteractAndReport:
    def test_trace_fields(self, g3_quarter, rng):
        agent = MinimaxAgent(AbsoluteLoss(), [2, 3], n=3)
        trace = interact_and_report(agent, g3_quarter, 2, rng, exact=True)
        assert trace.true_result == 2
        assert 0 <= trace.published <= 3
        assert 0 <= trace.reinterpreted <= 3

    def test_reinterpreted_respects_side_information(self, g3_quarter, rng):
        """With S = {2, 3} the rational agent never reports below 2."""
        agent = MinimaxAgent(AbsoluteLoss(), [2, 3], n=3)
        for _ in range(25):
            trace = interact_and_report(
                agent, g3_quarter, 3, rng, exact=True
            )
            assert trace.reinterpreted >= 2

    def test_deterministic_with_seed(self, g3_quarter):
        import numpy as np

        agent = MinimaxAgent(AbsoluteLoss(), None, n=3)
        a = interact_and_report(
            agent, g3_quarter, 1, np.random.default_rng(3), exact=True
        )
        b = interact_and_report(
            agent, g3_quarter, 1, np.random.default_rng(3), exact=True
        )
        assert a == b
