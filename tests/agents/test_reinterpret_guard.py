"""Regression test: reinterpret must reject an all-zero kernel row."""

import numpy as np
import pytest

from repro.agents.minimax import MinimaxAgent
from repro.exceptions import ValidationError
from repro.losses import AbsoluteLoss


@pytest.fixture
def agent():
    return MinimaxAgent(AbsoluteLoss(), None, n=2)


class TestReinterpretGuard:
    def test_zero_row_raises_validation_error(self, agent):
        kernel = np.array([[0.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        with pytest.raises(ValidationError, match="no positive mass"):
            agent.reinterpret(0, kernel, rng=np.random.default_rng(0))

    def test_negative_row_clipped_to_zero_raises(self, agent):
        kernel = np.array(
            [[-1.0, -2.0, -3.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]
        )
        with pytest.raises(ValidationError, match="no positive mass"):
            agent.reinterpret(0, kernel, rng=np.random.default_rng(0))

    def test_nan_row_raises(self, agent):
        kernel = np.array(
            [[np.nan, 0.5, 0.5], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]
        )
        with pytest.raises(ValidationError):
            agent.reinterpret(0, kernel, rng=np.random.default_rng(0))

    def test_valid_rows_still_sample(self, agent):
        kernel = np.array([[0.5, 0.5, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        result = agent.reinterpret(1, kernel, rng=np.random.default_rng(0))
        assert result == 1

    def test_out_of_range_observed_rejected(self, agent):
        kernel = np.eye(3)
        with pytest.raises(ValidationError):
            agent.reinterpret(3, kernel)
