"""Tests for the Bayesian (GRS09) baseline agents."""

from fractions import Fraction

import pytest

from repro.agents.bayesian import BayesianAgent, bayesian_optimal_mechanism
from repro.core.geometric import GeometricMechanism
from repro.core.mechanism import Mechanism
from repro.core.privacy import is_differentially_private
from repro.exceptions import ValidationError
from repro.losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss

UNIFORM4 = [Fraction(1, 4)] * 4


class TestConstruction:
    def test_prior_must_sum_to_one(self):
        with pytest.raises(ValidationError):
            BayesianAgent(AbsoluteLoss(), [Fraction(1, 2)] * 4, n=3)

    def test_prior_length_checked(self):
        with pytest.raises(ValidationError):
            BayesianAgent(AbsoluteLoss(), [Fraction(1, 2)] * 2, n=3)

    def test_negative_prior_rejected(self):
        with pytest.raises(ValidationError):
            BayesianAgent(
                AbsoluteLoss(),
                [Fraction(3, 2), Fraction(-1, 2), 0, 0],
                n=3,
            )

    def test_float_prior_accepted(self):
        agent = BayesianAgent(AbsoluteLoss(), [0.25] * 4, n=3)
        assert agent.prior == (0.25,) * 4


class TestExpectedLoss:
    def test_identity_mechanism_zero_loss(self):
        agent = BayesianAgent(AbsoluteLoss(), UNIFORM4, n=3)
        assert agent.expected_loss(Mechanism.identity(3)) == 0

    def test_uniform_mechanism_loss(self):
        agent = BayesianAgent(AbsoluteLoss(), UNIFORM4, n=3)
        # E over i,r uniform of |i-r| = (1/16) * sum|i-r| = 20/16.
        assert agent.expected_loss(Mechanism.uniform(3)) == Fraction(5, 4)

    def test_point_prior_reduces_to_row_loss(self, g3_quarter):
        prior = [0, 0, Fraction(1), 0]
        agent = BayesianAgent(SquaredLoss(), prior, n=3)
        assert agent.expected_loss(g3_quarter) == g3_quarter.expected_loss(
            SquaredLoss(), 2
        )


class TestDeterministicInteraction:
    def test_remap_is_deterministic(self, g3_quarter):
        """Section 2.7: Bayesian post-processing is a deterministic map."""
        agent = BayesianAgent(AbsoluteLoss(), UNIFORM4, n=3)
        interaction = agent.best_interaction(g3_quarter)
        for r in range(4):
            row = interaction.kernel[r]
            assert sum(1 for entry in row if entry != 0) == 1

    def test_point_prior_maps_everything_to_the_point(self, g3_quarter):
        prior = [0, Fraction(1), 0, 0]
        agent = BayesianAgent(AbsoluteLoss(), prior, n=3)
        interaction = agent.best_interaction(g3_quarter)
        assert interaction.remap == (1, 1, 1, 1)
        assert interaction.loss == 0

    def test_interaction_never_hurts(self, g3_quarter):
        for loss in (AbsoluteLoss(), SquaredLoss(), ZeroOneLoss()):
            agent = BayesianAgent(loss, UNIFORM4, n=3)
            interaction = agent.best_interaction(g3_quarter)
            assert interaction.loss <= agent.expected_loss(g3_quarter)

    def test_induced_is_composition(self, g3_quarter):
        agent = BayesianAgent(SquaredLoss(), UNIFORM4, n=3)
        interaction = agent.best_interaction(g3_quarter)
        assert g3_quarter.post_process(interaction.kernel) == interaction.induced


class TestGRS09Universality:
    """The baseline result this paper generalizes."""

    @pytest.mark.parametrize(
        "loss", [AbsoluteLoss(), SquaredLoss(), ZeroOneLoss()]
    )
    def test_geometric_universally_optimal_uniform_prior(
        self, g3_half, loss
    ):
        agent = BayesianAgent(loss, UNIFORM4, n=3)
        _, bespoke_loss = agent.bespoke_mechanism(Fraction(1, 2), exact=True)
        interaction = agent.best_interaction(g3_half)
        assert interaction.loss == bespoke_loss

    def test_geometric_universally_optimal_skewed_prior(self, g3_half):
        prior = [Fraction(1, 2), Fraction(1, 4), Fraction(1, 8), Fraction(1, 8)]
        agent = BayesianAgent(AbsoluteLoss(), prior, n=3)
        _, bespoke_loss = agent.bespoke_mechanism(Fraction(1, 2), exact=True)
        interaction = agent.best_interaction(g3_half)
        assert interaction.loss == bespoke_loss

    def test_bespoke_lp_output_is_private(self):
        mechanism, _ = bayesian_optimal_mechanism(
            3, Fraction(1, 2), AbsoluteLoss(), UNIFORM4, exact=True
        )
        assert is_differentially_private(mechanism, Fraction(1, 2))

    def test_scipy_and_exact_agree(self):
        _, exact_loss = bayesian_optimal_mechanism(
            3, Fraction(1, 2), AbsoluteLoss(), UNIFORM4, exact=True
        )
        _, float_loss = bayesian_optimal_mechanism(
            3, 0.5, AbsoluteLoss(), [0.25] * 4, exact=False
        )
        assert float_loss == pytest.approx(float(exact_loss), abs=1e-7)

    def test_prior_length_validated(self):
        with pytest.raises(ValidationError):
            bayesian_optimal_mechanism(
                3, Fraction(1, 2), AbsoluteLoss(), [Fraction(1)], exact=True
            )
