"""Tests for minimax agents."""

from fractions import Fraction

import numpy as np
import pytest

from repro.agents.minimax import MinimaxAgent
from repro.agents.side_information import SideInformation
from repro.core.mechanism import Mechanism
from repro.exceptions import LossFunctionError, ValidationError
from repro.losses import AbsoluteLoss, SquaredLoss, TabularLoss


class TestConstruction:
    def test_defaults_to_full_side_information(self):
        agent = MinimaxAgent(AbsoluteLoss(), None, n=3)
        assert agent.side_information.is_trivial

    def test_accepts_iterable_side_information(self):
        agent = MinimaxAgent(AbsoluteLoss(), [1, 2], n=3)
        assert agent.side_information.members == (1, 2)

    def test_accepts_side_information_object(self):
        side = SideInformation.at_least(1, n=3)
        agent = MinimaxAgent(AbsoluteLoss(), side, n=3)
        assert agent.side_information is side

    def test_mismatched_side_information_rejected(self):
        side = SideInformation.full(4)
        with pytest.raises(ValidationError):
            MinimaxAgent(AbsoluteLoss(), side, n=3)

    def test_non_loss_rejected(self):
        with pytest.raises(ValidationError):
            MinimaxAgent(lambda i, r: 0, None, n=3)

    def test_loss_validated_against_model(self):
        bad = np.array([[0, 2, 1], [1, 0, 1], [1, 2, 0]], dtype=object)
        loss = TabularLoss(bad, validate_monotone=False)
        with pytest.raises(LossFunctionError):
            MinimaxAgent(loss, None, n=2)

    def test_validation_can_be_skipped(self):
        bad = np.array([[0, 2, 1], [1, 0, 1], [1, 2, 0]], dtype=object)
        loss = TabularLoss(bad, validate_monotone=False)
        agent = MinimaxAgent(loss, None, n=2, validate=False)
        assert agent.n == 2


class TestEvaluation:
    def test_disutility_is_equation_one(self, g3_quarter):
        agent = MinimaxAgent(AbsoluteLoss(), [0, 3], n=3)
        expected = max(
            g3_quarter.expected_loss(AbsoluteLoss(), 0),
            g3_quarter.expected_loss(AbsoluteLoss(), 3),
        )
        assert agent.disutility(g3_quarter) == expected

    def test_interaction_beats_face_value(self, g3_quarter):
        agent = MinimaxAgent(SquaredLoss(), [2, 3], n=3)
        interaction = agent.best_interaction(g3_quarter, exact=True)
        assert interaction.loss <= agent.disutility(g3_quarter)

    def test_theorem1_via_agent_api(self, g3_quarter):
        """bespoke == interaction, through the agent-facing API."""
        agent = MinimaxAgent(AbsoluteLoss(), [1, 2, 3], n=3)
        interaction = agent.best_interaction(g3_quarter, exact=True)
        bespoke = agent.bespoke_mechanism(Fraction(1, 4), exact=True)
        assert interaction.loss == bespoke.loss

    def test_bespoke_respects_side_information(self):
        agent = MinimaxAgent(AbsoluteLoss(), [0, 1], n=3)
        result = agent.bespoke_mechanism(Fraction(1, 2), exact=True)
        assert result.side_information == (0, 1)


class TestReinterpret:
    def test_deterministic_kernel(self, rng):
        agent = MinimaxAgent(AbsoluteLoss(), None, n=2)
        kernel = Mechanism.identity(2).matrix
        assert agent.reinterpret(1, kernel, rng) == 1

    def test_remapping_kernel(self, rng):
        agent = MinimaxAgent(AbsoluteLoss(), None, n=2)
        kernel = np.zeros((3, 3))
        kernel[:, 2] = 1.0
        for observed in range(3):
            assert agent.reinterpret(observed, kernel, rng) == 2

    def test_out_of_range_observation(self, rng):
        agent = MinimaxAgent(AbsoluteLoss(), None, n=2)
        with pytest.raises(ValidationError):
            agent.reinterpret(5, Mechanism.identity(2).matrix, rng)

    def test_repr_mentions_loss(self):
        agent = MinimaxAgent(AbsoluteLoss(), None, n=2, name="gov")
        assert "gov" in repr(agent)
        assert "AbsoluteLoss" in repr(agent)
