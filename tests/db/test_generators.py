"""Tests for synthetic population generators."""

import pytest

from repro.db.generators import (
    FLU_SCHEMA,
    drug_purchases_lower_bound,
    flu_population,
    flu_query,
    random_population,
)
from repro.db.schema import Attribute, Schema
from repro.exceptions import ValidationError


class TestFluPopulation:
    def test_size(self, rng):
        assert flu_population(50, rng).size == 50

    def test_rows_conform_to_schema(self, rng):
        db = flu_population(20, rng)
        for row in db:
            FLU_SCHEMA.validate_row(dict(row))

    def test_deterministic_with_seed(self):
        a = flu_population(30, 7)
        b = flu_population(30, 7)
        assert [dict(r) for r in a] == [dict(r) for r in b]

    def test_flu_rate_respected(self, rng):
        db = flu_population(4000, rng, flu_rate=0.25)
        rate = sum(1 for row in db if row["has_flu"]) / db.size
        assert rate == pytest.approx(0.25, abs=0.04)

    def test_extreme_rates(self, rng):
        everyone = flu_population(30, rng, flu_rate=1.0)
        assert all(row["has_flu"] for row in everyone)
        nobody = flu_population(30, rng, flu_rate=0.0)
        assert not any(row["has_flu"] for row in nobody)

    def test_bad_rate_rejected(self, rng):
        with pytest.raises(ValidationError):
            flu_population(10, rng, flu_rate=1.5)

    def test_bad_size_rejected(self, rng):
        with pytest.raises(ValidationError):
            flu_population(0, rng)


class TestFluQuery:
    def test_query_counts_expected_rows(self, rng):
        db = flu_population(200, rng)
        expected = sum(
            1
            for row in db
            if row["city"] == "san_diego"
            and row["has_flu"]
            and row["age"] >= 18
        )
        assert flu_query()(db) == expected

    def test_adults_only_flag(self, rng):
        db = flu_population(200, rng)
        assert flu_query(adults_only=False)(db) >= flu_query()(db)


class TestDrugPurchasesLowerBound:
    def test_is_lower_bound_on_query(self, rng):
        """Example 1: drug sales lower-bound the flu count."""
        for seed in range(5):
            db = flu_population(300, seed)
            assert drug_purchases_lower_bound(db) <= flu_query()(db)


class TestRandomPopulation:
    def test_arbitrary_schema(self, rng):
        schema = Schema(
            [
                Attribute("kind", "categorical", ("a", "b")),
                Attribute("level", "int", (1, 5)),
                Attribute("flag", "bool"),
            ]
        )
        db = random_population(schema, 25, rng)
        assert db.size == 25
        for row in db:
            schema.validate_row(dict(row))

    def test_int_without_domain(self, rng):
        schema = Schema([Attribute("value", "int")])
        db = random_population(schema, 10, rng)
        assert all(isinstance(row["value"], int) for row in db)

    def test_bad_size(self, rng):
        schema = Schema([Attribute("flag", "bool")])
        with pytest.raises(ValidationError):
            random_population(schema, 0, rng)
