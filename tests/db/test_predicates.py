"""Tests for the predicate DSL."""

import pytest

from repro.db.predicates import (
    And,
    Between,
    Eq,
    Ge,
    In,
    Le,
    Not,
    Or,
    TruePredicate,
)
from repro.exceptions import QueryError

ROW = {"city": "san_diego", "age": 34, "has_flu": True}


class TestAtoms:
    def test_true_predicate(self):
        assert TruePredicate()(ROW)

    def test_eq(self):
        assert Eq("city", "san_diego")(ROW)
        assert not Eq("city", "la")(ROW)

    def test_ge(self):
        assert Ge("age", 18)(ROW)
        assert not Ge("age", 35)(ROW)

    def test_le(self):
        assert Le("age", 34)(ROW)
        assert not Le("age", 33)(ROW)

    def test_between(self):
        assert Between("age", 18, 65)(ROW)
        assert not Between("age", 35, 65)(ROW)

    def test_between_reversed_bounds(self):
        with pytest.raises(QueryError):
            Between("age", 65, 18)

    def test_in(self):
        assert In("city", ["san_diego", "la"])(ROW)
        assert not In("city", ["la"])(ROW)

    def test_in_requires_values(self):
        with pytest.raises(QueryError):
            In("city", [])

    def test_missing_attribute(self):
        with pytest.raises(QueryError):
            Eq("weight", 1)(ROW)


class TestCombinators:
    def test_and(self):
        predicate = And([Eq("city", "san_diego"), Ge("age", 18)])
        assert predicate(ROW)
        assert not And([Eq("city", "la"), Ge("age", 18)])(ROW)

    def test_or(self):
        assert Or([Eq("city", "la"), Eq("has_flu", True)])(ROW)
        assert not Or([Eq("city", "la"), Eq("has_flu", False)])(ROW)

    def test_not(self):
        assert Not(Eq("city", "la"))(ROW)

    def test_operator_overloads(self):
        predicate = Eq("city", "san_diego") & Ge("age", 18)
        assert predicate(ROW)
        predicate = Eq("city", "la") | Eq("has_flu", True)
        assert predicate(ROW)
        assert (~Eq("city", "la"))(ROW)

    def test_empty_combinators_rejected(self):
        with pytest.raises(QueryError):
            And([])
        with pytest.raises(QueryError):
            Or([])

    def test_papers_query_q(self):
        """Q: adult, resides in San Diego, contracted flu."""
        q = And(
            [Eq("city", "san_diego"), Ge("age", 18), Eq("has_flu", True)]
        )
        assert q(ROW)
        assert not q({**ROW, "age": 10})
        assert not q({**ROW, "has_flu": False})

    def test_describe_renders_tree(self):
        predicate = And([Eq("a", 1), Not(Ge("b", 2))])
        text = predicate.describe()
        assert "AND" in text
        assert "NOT" in text
