"""Tests for neighbor enumeration and sensitivity verification."""

import pytest

from repro.db.database import Database
from repro.db.neighbors import enumerate_neighbors, verify_unit_sensitivity
from repro.db.predicates import Eq
from repro.db.queries import CountQuery
from repro.db.schema import Attribute, Schema
from repro.exceptions import ValidationError


def setup():
    schema = Schema([Attribute("bit", "bool")])
    db = Database(schema, [{"bit": True}, {"bit": False}, {"bit": True}])
    universe = [{"bit": True}, {"bit": False}]
    query = CountQuery(Eq("bit", True))
    return db, universe, query


class TestEnumerateNeighbors:
    def test_count(self):
        db, universe, _ = setup()
        # Each of 3 rows has exactly 1 differing replacement.
        assert len(list(enumerate_neighbors(db, universe))) == 3

    def test_all_same_size(self):
        db, universe, _ = setup()
        for neighbor in enumerate_neighbors(db, universe):
            assert neighbor.size == db.size

    def test_unchanged_rows_skipped(self):
        db, universe, _ = setup()
        for neighbor in enumerate_neighbors(db, universe):
            differing = sum(
                1
                for a, b in zip(db.rows, neighbor.rows)
                if dict(a) != dict(b)
            )
            assert differing == 1

    def test_empty_universe_rejected(self):
        db, _, _ = setup()
        with pytest.raises(ValidationError):
            list(enumerate_neighbors(db, []))

    def test_richer_universe(self):
        schema = Schema([Attribute("kind", "categorical", ("a", "b", "c"))])
        db = Database(schema, [{"kind": "a"}, {"kind": "b"}])
        universe = [{"kind": k} for k in ("a", "b", "c")]
        # Each row has 2 differing replacements.
        assert len(list(enumerate_neighbors(db, universe))) == 4


class TestUnitSensitivity:
    def test_count_query_has_unit_sensitivity(self):
        db, universe, query = setup()
        assert verify_unit_sensitivity(query, db, universe)

    def test_catches_non_unit_queries(self):
        """A doubled 'query' violates the bound and is caught."""
        db, universe, _ = setup()

        class DoubledCount(CountQuery):
            def evaluate(self, database):
                return 2 * super().evaluate(database)

        doubled = DoubledCount(Eq("bit", True))
        assert not verify_unit_sensitivity(doubled, db, universe)

    def test_categorical_count_query(self):
        schema = Schema([Attribute("kind", "categorical", ("a", "b", "c"))])
        db = Database(schema, [{"kind": "a"}, {"kind": "b"}, {"kind": "a"}])
        universe = [{"kind": k} for k in ("a", "b", "c")]
        query = CountQuery(Eq("kind", "a"))
        assert verify_unit_sensitivity(query, db, universe)
