"""Tests for the private query engine."""

from fractions import Fraction

import pytest

from repro.core.geometric import GeometricMechanism
from repro.core.mechanism import Mechanism
from repro.db.database import Database
from repro.db.engine import QueryEngine
from repro.db.predicates import Eq
from repro.db.queries import CountQuery
from repro.db.schema import Attribute, Schema
from repro.exceptions import QueryError, ValidationError


def make_engine(size=4, flu=2):
    schema = Schema([Attribute("has_flu", "bool")])
    rows = [{"has_flu": i < flu} for i in range(size)]
    return QueryEngine(Database(schema, rows))


FLU_QUERY = CountQuery(Eq("has_flu", True))


class TestQueryEngine:
    def test_exact_answer(self):
        assert make_engine().answer_exact(FLU_QUERY) == 2

    def test_private_answer_with_alpha(self, rng):
        engine = make_engine()
        result = engine.answer_private(FLU_QUERY, Fraction(1, 2), rng=rng)
        assert 0 <= result.value <= 4
        assert result.true_value == 2
        assert result.alpha == Fraction(1, 2)
        assert isinstance(result.mechanism, GeometricMechanism)

    def test_private_answer_with_custom_mechanism(self, rng):
        engine = make_engine()
        mechanism = Mechanism.uniform(4)
        result = engine.answer_private(
            FLU_QUERY, mechanism=mechanism, rng=rng
        )
        assert 0 <= result.value <= 4

    def test_exactly_one_of_alpha_or_mechanism(self, rng):
        engine = make_engine()
        with pytest.raises(QueryError):
            engine.answer_private(FLU_QUERY, rng=rng)
        with pytest.raises(QueryError):
            engine.answer_private(
                FLU_QUERY, Fraction(1, 2), mechanism=Mechanism.uniform(4)
            )

    def test_mechanism_size_must_match(self, rng):
        engine = make_engine()
        with pytest.raises(QueryError):
            engine.answer_private(
                FLU_QUERY, mechanism=Mechanism.uniform(3), rng=rng
            )

    def test_error_accessor(self, rng):
        engine = make_engine()
        result = engine.answer_private(FLU_QUERY, Fraction(1, 100), rng=rng)
        assert result.error() == abs(result.value - result.true_value)

    def test_requires_database(self):
        with pytest.raises(ValidationError):
            QueryEngine([1, 2, 3])

    def test_high_privacy_noisier_than_low(self, rng):
        """Empirically: alpha near 1 produces larger average error."""
        engine = make_engine(size=8, flu=4)
        low = [
            engine.answer_private(FLU_QUERY, 0.05, rng=rng).error()
            for _ in range(400)
        ]
        high = [
            engine.answer_private(FLU_QUERY, 0.9, rng=rng).error()
            for _ in range(400)
        ]
        assert sum(high) > sum(low)
