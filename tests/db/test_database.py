"""Tests for databases and rows."""

import pytest

from repro.db.database import Database, Row
from repro.db.predicates import Eq
from repro.db.schema import Attribute, Schema
from repro.exceptions import QueryError, SchemaError, ValidationError


def flu_schema():
    return Schema(
        [Attribute("has_flu", "bool"), Attribute("age", "int", (0, 120))]
    )


def small_db():
    return Database(
        flu_schema(),
        [
            {"has_flu": True, "age": 30},
            {"has_flu": False, "age": 40},
            {"has_flu": True, "age": 50},
        ],
    )


class TestRow:
    def test_mapping_protocol(self):
        row = Row({"has_flu": True, "age": 30}, flu_schema())
        assert row["age"] == 30
        assert set(row) == {"has_flu", "age"}
        assert len(row) == 2

    def test_validation_on_construction(self):
        with pytest.raises(SchemaError):
            Row({"has_flu": True, "age": 300}, flu_schema())

    def test_replace(self):
        schema = flu_schema()
        row = Row({"has_flu": True, "age": 30}, schema)
        other = row.replace(schema, age=31)
        assert other["age"] == 31
        assert row["age"] == 30

    def test_replace_validates(self):
        schema = flu_schema()
        row = Row({"has_flu": True, "age": 30}, schema)
        with pytest.raises(SchemaError):
            row.replace(schema, age=500)

    def test_equality_with_dict(self):
        row = Row({"has_flu": True, "age": 30}, flu_schema())
        assert row == {"has_flu": True, "age": 30}

    def test_hashable(self):
        schema = flu_schema()
        a = Row({"has_flu": True, "age": 30}, schema)
        b = Row({"age": 30, "has_flu": True}, schema)
        assert hash(a) == hash(b)


class TestDatabase:
    def test_size_and_iteration(self):
        db = small_db()
        assert db.size == len(db) == 3
        assert [row["age"] for row in db] == [30, 40, 50]

    def test_count(self):
        assert small_db().count(Eq("has_flu", True)) == 2

    def test_count_requires_callable(self):
        with pytest.raises(QueryError):
            small_db().count("has_flu")

    def test_add_row_validates(self):
        db = small_db()
        with pytest.raises(SchemaError):
            db.add_row({"has_flu": True})

    def test_replace_row_creates_neighbor(self):
        db = small_db()
        neighbor = db.replace_row(0, {"has_flu": False, "age": 30})
        assert neighbor.size == db.size
        assert neighbor.count(Eq("has_flu", True)) == 1
        # Original untouched.
        assert db.count(Eq("has_flu", True)) == 2

    def test_replace_row_bad_index(self):
        with pytest.raises(ValidationError):
            small_db().replace_row(5, {"has_flu": True, "age": 1})

    def test_project(self):
        assert small_db().project("age") == [30, 40, 50]

    def test_project_unknown_attribute(self):
        with pytest.raises(SchemaError):
            small_db().project("weight")

    def test_getitem(self):
        assert small_db()[1]["age"] == 40

    def test_requires_schema(self):
        with pytest.raises(ValidationError):
            Database("not a schema")

    def test_neighbor_count_changes_by_at_most_one(self):
        """The unit-sensitivity fact behind Definition 2."""
        db = small_db()
        base = db.count(Eq("has_flu", True))
        for index in range(db.size):
            for value in (True, False):
                neighbor = db.replace_row(
                    index, {"has_flu": value, "age": 1}
                )
                assert abs(neighbor.count(Eq("has_flu", True)) - base) <= 1
