"""Tests for schemas and attributes."""

import pytest

from repro.db.schema import Attribute, Schema
from repro.exceptions import SchemaError


class TestAttribute:
    def test_bool_attribute(self):
        attr = Attribute("has_flu", "bool")
        attr.validate(True)
        with pytest.raises(SchemaError):
            attr.validate(1)

    def test_int_attribute_with_range(self):
        attr = Attribute("age", "int", (0, 120))
        attr.validate(30)
        with pytest.raises(SchemaError):
            attr.validate(150)
        with pytest.raises(SchemaError):
            attr.validate(True)  # bools are not ints here

    def test_int_attribute_unbounded(self):
        attr = Attribute("count", "int")
        attr.validate(-5)

    def test_categorical_attribute(self):
        attr = Attribute("city", "categorical", ("sd", "la"))
        attr.validate("sd")
        with pytest.raises(SchemaError):
            attr.validate("nyc")

    def test_categorical_requires_domain(self):
        with pytest.raises(SchemaError):
            Attribute("city", "categorical")

    def test_bool_rejects_domain(self):
        with pytest.raises(SchemaError):
            Attribute("flag", "bool", (True, False))

    def test_bad_kind(self):
        with pytest.raises(SchemaError):
            Attribute("x", "float")

    def test_bad_int_range(self):
        with pytest.raises(SchemaError):
            Attribute("x", "int", (5, 1))

    def test_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("", "bool")


class TestSchema:
    def make(self):
        return Schema(
            [
                Attribute("city", "categorical", ("sd", "la")),
                Attribute("age", "int", (0, 120)),
                Attribute("has_flu", "bool"),
            ]
        )

    def test_names(self):
        assert self.make().names == ("city", "age", "has_flu")

    def test_attribute_lookup(self):
        schema = self.make()
        assert schema.attribute("age").kind == "int"
        assert "age" in schema
        assert "weight" not in schema

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            self.make().attribute("weight")

    def test_validate_row_ok(self):
        self.make().validate_row(
            {"city": "sd", "age": 40, "has_flu": False}
        )

    def test_validate_row_missing(self):
        with pytest.raises(SchemaError, match="missing"):
            self.make().validate_row({"city": "sd", "age": 40})

    def test_validate_row_extra(self):
        with pytest.raises(SchemaError, match="unknown"):
            self.make().validate_row(
                {"city": "sd", "age": 40, "has_flu": False, "x": 1}
            )

    def test_validate_row_bad_value(self):
        with pytest.raises(SchemaError):
            self.make().validate_row(
                {"city": "nyc", "age": 40, "has_flu": False}
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("a", "bool"), Attribute("a", "bool")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_equality(self):
        assert self.make() == self.make()
