"""Tests for count queries."""

import pytest

from repro.db.database import Database
from repro.db.predicates import Eq, Ge
from repro.db.queries import CountQuery
from repro.db.schema import Attribute, Schema
from repro.exceptions import QueryError


def db():
    schema = Schema(
        [Attribute("has_flu", "bool"), Attribute("age", "int", (0, 120))]
    )
    return Database(
        schema,
        [
            {"has_flu": True, "age": 20},
            {"has_flu": True, "age": 10},
            {"has_flu": False, "age": 70},
        ],
    )


class TestCountQuery:
    def test_evaluate(self):
        assert CountQuery(Eq("has_flu", True)).evaluate(db()) == 2

    def test_callable(self):
        query = CountQuery(Ge("age", 18))
        assert query(db()) == 2

    def test_conjunction(self):
        query = CountQuery(Eq("has_flu", True) & Ge("age", 18))
        assert query(db()) == 1

    def test_requires_predicate(self):
        with pytest.raises(QueryError):
            CountQuery(lambda row: True)

    def test_requires_database(self):
        with pytest.raises(QueryError):
            CountQuery(Eq("has_flu", True)).evaluate([{"has_flu": True}])

    def test_sensitivity_is_one(self):
        assert CountQuery.sensitivity() == 1

    def test_result_range(self):
        query = CountQuery(Eq("has_flu", True))
        assert list(query.result_range(db())) == [0, 1, 2, 3]

    def test_describe_includes_name(self):
        query = CountQuery(Eq("has_flu", True), name="flu count")
        assert "flu count" in query.describe()
        assert "COUNT WHERE" in query.describe()

    def test_result_in_range(self):
        database = db()
        query = CountQuery(Eq("has_flu", True))
        assert 0 <= query(database) <= database.size
