"""Tests for CSV import/export."""

import pytest

from repro.db.database import Database
from repro.db.generators import FLU_SCHEMA, flu_population
from repro.db.io import (
    database_from_csv,
    database_to_csv,
    load_csv,
    save_csv,
)
from repro.db.schema import Attribute, Schema
from repro.exceptions import SchemaError, ValidationError


def simple_schema():
    return Schema(
        [
            Attribute("city", "categorical", ("sd", "la")),
            Attribute("age", "int", (0, 120)),
            Attribute("has_flu", "bool"),
        ]
    )


def simple_db():
    return Database(
        simple_schema(),
        [
            {"city": "sd", "age": 30, "has_flu": True},
            {"city": "la", "age": 64, "has_flu": False},
        ],
    )


class TestSerialize:
    def test_header_row(self):
        text = database_to_csv(simple_db())
        assert text.splitlines()[0] == "city,age,has_flu"

    def test_bool_encoding(self):
        lines = database_to_csv(simple_db()).splitlines()
        assert lines[1] == "sd,30,true"
        assert lines[2] == "la,64,false"

    def test_requires_database(self):
        with pytest.raises(ValidationError):
            database_to_csv([{"x": 1}])


class TestParse:
    def test_round_trip(self):
        db = simple_db()
        parsed = database_from_csv(database_to_csv(db), simple_schema())
        assert [dict(r) for r in parsed] == [dict(r) for r in db]

    def test_flu_population_round_trip(self, rng):
        db = flu_population(25, rng)
        parsed = database_from_csv(database_to_csv(db), FLU_SCHEMA)
        assert [dict(r) for r in parsed] == [dict(r) for r in db]

    def test_header_order_free(self):
        text = "age,has_flu,city\n30,true,sd\n"
        parsed = database_from_csv(text, simple_schema())
        assert parsed[0]["city"] == "sd"
        assert parsed[0]["age"] == 30

    def test_bool_variants(self):
        for token, expected in (
            ("true", True), ("1", True), ("yes", True),
            ("false", False), ("0", False), ("no", False),
        ):
            text = f"city,age,has_flu\nsd,5,{token}\n"
            parsed = database_from_csv(text, simple_schema())
            assert parsed[0]["has_flu"] is expected

    def test_bad_bool_rejected(self):
        text = "city,age,has_flu\nsd,5,maybe\n"
        with pytest.raises(SchemaError):
            database_from_csv(text, simple_schema())

    def test_bad_int_rejected(self):
        text = "city,age,has_flu\nsd,old,true\n"
        with pytest.raises(SchemaError):
            database_from_csv(text, simple_schema())

    def test_domain_validated(self):
        text = "city,age,has_flu\nnyc,5,true\n"
        with pytest.raises(SchemaError):
            database_from_csv(text, simple_schema())

    def test_missing_header_rejected(self):
        with pytest.raises(SchemaError):
            database_from_csv("", simple_schema())

    def test_wrong_header_rejected(self):
        with pytest.raises(SchemaError):
            database_from_csv("a,b\n1,2\n", simple_schema())

    def test_ragged_row_rejected(self):
        text = "city,age,has_flu\nsd,5\n"
        with pytest.raises(SchemaError):
            database_from_csv(text, simple_schema())

    def test_trailing_blank_lines_tolerated(self):
        text = "city,age,has_flu\nsd,5,true\n\n"
        parsed = database_from_csv(text, simple_schema())
        assert parsed.size == 1


class TestFiles:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "population.csv"
        db = simple_db()
        save_csv(db, path)
        loaded = load_csv(path, simple_schema())
        assert [dict(r) for r in loaded] == [dict(r) for r in db]
