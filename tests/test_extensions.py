"""Tests for the multi-query extension (the paper's open question)."""

from fractions import Fraction

import pytest

from repro.db.database import Database
from repro.db.predicates import Eq
from repro.db.queries import CountQuery
from repro.db.schema import Attribute, Schema
from repro.exceptions import ValidationError
from repro.extensions.multiquery import (
    MultiQueryPublisher,
    compose_alphas,
    split_budget,
)
from repro.losses import AbsoluteLoss
from repro.release.ledger import BudgetExceededError


def make_db(size=4):
    schema = Schema(
        [Attribute("sick", "bool"), Attribute("adult", "bool")]
    )
    rows = [
        {"sick": i % 2 == 0, "adult": i < 3} for i in range(size)
    ]
    return Database(schema, rows)


SICK = CountQuery(Eq("sick", True))
ADULT = CountQuery(Eq("adult", True))


class TestComposition:
    def test_product_rule(self):
        assert compose_alphas(
            [Fraction(1, 2), Fraction(1, 3)]
        ) == Fraction(1, 6)

    def test_single_level(self):
        assert compose_alphas([Fraction(2, 3)]) == Fraction(2, 3)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            compose_alphas([])

    def test_split_budget_recomposes_within_budget(self):
        total = Fraction(1, 4)
        for count in (1, 2, 3, 5):
            levels = split_budget(total, count)
            assert len(levels) == count
            recomposed = 1.0
            for level in levels:
                recomposed *= float(level)
            assert recomposed <= float(total) + 1e-12

    def test_split_budget_single_is_exact(self):
        assert split_budget(Fraction(1, 3), 1) == [Fraction(1, 3)]

    def test_split_budget_count_validated(self):
        with pytest.raises(ValidationError):
            split_budget(Fraction(1, 2), 0)


class TestMultiQueryPublisher:
    def test_answers_every_query(self, rng):
        publisher = MultiQueryPublisher(make_db())
        answer = publisher.answer(
            [SICK, ADULT], [Fraction(1, 2), Fraction(1, 3)], rng
        )
        assert len(answer.values) == 2
        assert all(0 <= v <= 4 for v in answer.values)
        assert answer.joint_alpha == Fraction(1, 6)

    def test_ledger_tracks_joint_cost(self, rng):
        publisher = MultiQueryPublisher(make_db())
        publisher.answer([SICK], [Fraction(1, 2)], rng)
        publisher.answer([ADULT], [Fraction(1, 2)], rng)
        assert publisher.ledger.cumulative_alpha == Fraction(1, 4)

    def test_floor_enforced_atomically(self, rng):
        publisher = MultiQueryPublisher(
            make_db(), joint_floor=Fraction(1, 4)
        )
        publisher.answer([SICK], [Fraction(1, 2)], rng)
        with pytest.raises(BudgetExceededError):
            publisher.answer(
                [ADULT, SICK], [Fraction(1, 2), Fraction(1, 2)], rng
            )
        # Atomic refusal: nothing was charged by the failed batch.
        assert publisher.ledger.cumulative_alpha == Fraction(1, 2)

    def test_mismatched_lengths_rejected(self, rng):
        publisher = MultiQueryPublisher(make_db())
        with pytest.raises(ValidationError):
            publisher.answer([SICK, ADULT], [Fraction(1, 2)], rng)

    def test_requires_count_queries(self, rng):
        publisher = MultiQueryPublisher(make_db())
        with pytest.raises(ValidationError):
            publisher.answer(["not a query"], [Fraction(1, 2)], rng)

    def test_per_query_universality_survives(self):
        """Theorem 1 applies verbatim to each individual release."""
        publisher = MultiQueryPublisher(make_db())
        assert publisher.verify_per_query_universality(
            Fraction(1, 2), AbsoluteLoss(), {1, 2, 3}
        )

    def test_joint_degradation_is_real(self, rng):
        """The open problem: jointly, the guarantee is the product —
        strictly weaker than any single release's level."""
        publisher = MultiQueryPublisher(make_db())
        answer = publisher.answer(
            [SICK, ADULT, SICK],
            [Fraction(1, 2)] * 3,
            rng,
        )
        assert answer.joint_alpha == Fraction(1, 8)
        assert answer.joint_alpha < min(answer.per_query_alpha)
