"""Tests for the crash-safe durable privacy ledger.

The invariants under test (see the module docstring of
:mod:`repro.release.durable_ledger`):

* **release-implies-durable** — a charge is journaled (and, in
  ``fsync="always"`` mode, fsync'd) before the caller sees "charged";
* **conservative recovery** — a valid checksummed record is always
  kept (ambiguity over-protects), a torn tail is truncated
  (never-acknowledged = never-released = floor-legal to drop), and
  corruption *before* valid records is refused loudly;
* **exactness** — budgets round-trip as exact ``Fraction`` values, not
  floats;
* **idempotency** — a replayed key never double-charges, even across a
  crash that lost the response.
"""

import json
import multiprocessing
import os
from fractions import Fraction

import pytest

from repro.exceptions import ReproError, ValidationError
from repro.release.durable_ledger import (
    FSYNC_MODES,
    DurableLedger,
    LedgerCorruptionError,
    LedgerUnavailableError,
    MemoryLedgerBook,
    verify_ledger_dir,
)
from repro.release.ledger import ConcurrentPrivacyLedger, PrivacyLedger
from repro.serving.faults import FaultInjector, FaultyFS, InjectedCrash

HALF = Fraction(1, 2)
QUARTER = Fraction(1, 4)


@pytest.fixture()
def ledger_dir(tmp_path):
    return tmp_path / "ledger"


def reopen(ledger_dir, **kwargs):
    return DurableLedger(ledger_dir, **kwargs)


class TestRestore:
    def test_restore_sets_exact_cumulative(self):
        ledger = PrivacyLedger(floor=Fraction(1, 16))
        ledger.restore(Fraction(3, 7))
        assert ledger.cumulative_alpha == Fraction(3, 7)
        assert len(ledger) == 1

    def test_restore_summarizing_many_releases_keeps_len_truthful(self):
        ledger = ConcurrentPrivacyLedger(floor=0)
        ledger.restore(Fraction(1, 8), releases=3)
        assert len(ledger) == 3
        ledger.charge(HALF)
        assert len(ledger) == 4
        assert ledger.cumulative_alpha == Fraction(1, 16)

    def test_restore_may_sit_at_the_floor(self):
        ledger = PrivacyLedger(floor=Fraction(1, 8))
        ledger.restore(Fraction(1, 8))
        assert ledger.cumulative_alpha == ledger.floor
        assert not ledger.can_afford(HALF)

    def test_restore_rejects_nonsense(self):
        ledger = PrivacyLedger()
        with pytest.raises(ValidationError):
            ledger.restore(0)
        with pytest.raises(ValidationError):
            ledger.restore(HALF, releases=0)


class TestDurableRoundtrip:
    def test_exact_fractions_survive_reopen(self, ledger_dir):
        ledger = DurableLedger(ledger_dir, Fraction(1, 1000))
        ledger.charge("alice", Fraction(123, 456), label="odd")
        ledger.charge("alice", Fraction(7, 9))
        ledger.close()
        back = reopen(ledger_dir)
        budget = back.view("alice")
        assert budget.cumulative_alpha == Fraction(123, 456) * Fraction(7, 9)
        assert budget.releases == 2
        assert back.floor == Fraction(1, 1000)
        back.close()

    def test_floor_enforced_across_restarts(self, ledger_dir):
        statuses = []
        for _ in range(4):
            ledger = reopen(ledger_dir, floor=Fraction(1, 8))
            statuses.append(ledger.charge("u", HALF).outcome)
            ledger.close()
        # 1/2 -> 1/4 -> 1/8 (== floor, legal) -> rejected
        assert statuses == ["charged", "charged", "charged", "rejected"]

    def test_rejected_charge_writes_nothing(self, ledger_dir):
        ledger = DurableLedger(ledger_dir, Fraction(1, 4))
        ledger.charge("u", HALF)
        size = os.path.getsize(ledger_dir / "wal.jsonl")
        decision = ledger.charge("u", QUARTER)
        assert decision.outcome == "rejected"
        assert os.path.getsize(ledger_dir / "wal.jsonl") == size
        ledger.close()

    def test_none_floor_adopts_persisted_floor(self, ledger_dir):
        DurableLedger(ledger_dir, Fraction(1, 8)).close()
        back = reopen(ledger_dir)
        assert back.floor == Fraction(1, 8)
        back.close()

    def test_explicit_floor_overrides_persisted(self, ledger_dir):
        DurableLedger(ledger_dir, Fraction(1, 8)).close()
        back = reopen(ledger_dir, floor=Fraction(1, 32))
        assert back.floor == Fraction(1, 32)
        back.close()
        assert reopen(ledger_dir).floor == Fraction(1, 32)

    def test_bad_fsync_mode_rejected(self, ledger_dir):
        with pytest.raises(ReproError, match="fsync"):
            DurableLedger(ledger_dir, fsync="sometimes")
        assert set(FSYNC_MODES) == {"always", "group", "off"}


class TestIdempotency:
    def test_replay_returns_original_response(self, ledger_dir):
        ledger = DurableLedger(ledger_dir, Fraction(1, 4))
        first = ledger.charge("u", HALF, idem="req-1")
        assert first.outcome == "charged"
        ledger.record_result("req-1", 200, {"value": 9})
        again = ledger.charge("u", HALF, idem="req-1")
        assert again.outcome == "replayed"
        assert again.replay == (200, {"value": 9})
        # the budget was spent exactly once
        assert ledger.view("u").cumulative_alpha == HALF
        ledger.close()

    def test_replay_survives_reopen(self, ledger_dir):
        ledger = DurableLedger(ledger_dir, Fraction(1, 4))
        ledger.charge("u", HALF, idem="req-1")
        ledger.record_result("req-1", 200, {"value": 9})
        ledger.close()
        back = reopen(ledger_dir)
        again = back.charge("u", HALF, idem="req-1")
        assert again.outcome == "replayed"
        assert again.replay == (200, {"value": 9})
        back.close()

    def test_charged_but_response_lost_is_pending_not_recharged(
        self, ledger_dir
    ):
        ledger = DurableLedger(ledger_dir, Fraction(1, 4))
        ledger.charge("u", HALF, idem="req-1")
        ledger.close()  # "crash" before record_result
        back = reopen(ledger_dir)
        decision = back.charge("u", HALF, idem="req-1")
        assert decision.outcome == "pending"
        assert back.view("u").cumulative_alpha == HALF  # spent once
        back.close()

    def test_memory_book_same_semantics(self):
        book = MemoryLedgerBook(Fraction(1, 4))
        assert book.charge("u", HALF, idem="k").outcome == "charged"
        assert book.charge("u", HALF, idem="k").outcome == "pending"
        book.record_result("k", 200, {"v": 1})
        replay = book.charge("u", HALF, idem="k")
        assert replay.outcome == "replayed"
        assert replay.replay == (200, {"v": 1})
        assert book.view("u").cumulative_alpha == HALF


class TestRecovery:
    def test_torn_tail_is_truncated(self, ledger_dir):
        ledger = DurableLedger(ledger_dir)
        ledger.charge("u", HALF)
        ledger.charge("u", HALF)
        ledger.close()
        wal = ledger_dir / "wal.jsonl"
        intact = wal.read_bytes()
        wal.write_bytes(intact + b'{"op":"charge","seq":3,"user":"u"')
        back = reopen(ledger_dir)
        assert back.view("u").cumulative_alpha == QUARTER
        assert wal.read_bytes() == intact  # tail physically removed
        back.close()

    def test_checksum_corrupt_tail_is_truncated(self, ledger_dir):
        ledger = DurableLedger(ledger_dir)
        ledger.charge("u", HALF)
        ledger.charge("u", HALF)
        ledger.close()
        wal = ledger_dir / "wal.jsonl"
        lines = wal.read_bytes().splitlines(keepends=True)
        flipped = lines[-1].replace(b'"user":"u"', b'"user":"x"')
        assert flipped != lines[-1]
        wal.write_bytes(b"".join(lines[:-1]) + flipped)
        back = reopen(ledger_dir)
        assert back.view("u").cumulative_alpha == HALF
        back.close()

    def test_mid_journal_corruption_is_refused(self, ledger_dir):
        ledger = DurableLedger(ledger_dir)
        ledger.charge("u", HALF)
        ledger.charge("u", HALF)
        ledger.close()
        wal = ledger_dir / "wal.jsonl"
        lines = wal.read_bytes().splitlines(keepends=True)
        wal.write_bytes(b"garbage not json\n" + b"".join(lines))
        with pytest.raises(LedgerCorruptionError, match="refusing to drop"):
            reopen(ledger_dir)
        report = verify_ledger_dir(ledger_dir)
        assert not report["ok"]

    def test_seq_gap_is_refused(self, ledger_dir):
        ledger = DurableLedger(ledger_dir)
        ledger.charge("u", HALF)
        ledger.charge("u", HALF)
        ledger.close()
        wal = ledger_dir / "wal.jsonl"
        lines = wal.read_bytes().splitlines(keepends=True)
        wal.write_bytes(lines[-1])  # first record vanished
        with pytest.raises(LedgerCorruptionError):
            reopen(ledger_dir)

    def test_snapshot_plus_journal_replay(self, ledger_dir):
        ledger = DurableLedger(ledger_dir, Fraction(1, 100))
        ledger.charge("u", HALF, label="before-snapshot")
        ledger.compact()
        ledger.charge("u", QUARTER, label="after-snapshot")
        ledger.close()
        back = reopen(ledger_dir)
        budget = back.view("u")
        assert budget.cumulative_alpha == Fraction(1, 8)
        assert budget.releases == 2
        back.close()

    def test_crash_between_snapshot_and_truncate_is_safe(self, ledger_dir):
        faults = FaultInjector().crash_at("compact.after-snapshot")
        ledger = DurableLedger(ledger_dir, faults=faults)
        ledger.charge("u", HALF)
        with pytest.raises(InjectedCrash):
            ledger.compact()
        # the snapshot landed, the journal did not get truncated:
        assert (ledger_dir / "snapshot.json").exists()
        assert os.path.getsize(ledger_dir / "wal.jsonl") > 0
        back = reopen(ledger_dir)
        # replay must not double-apply the journaled charge
        assert back.view("u").cumulative_alpha == HALF
        assert back.view("u").releases == 1
        back.close()

    def test_auto_compaction_bounds_the_journal(self, ledger_dir):
        ledger = DurableLedger(ledger_dir, snapshot_every=4)
        for _ in range(10):
            ledger.charge("u", Fraction(999, 1000))
        assert ledger.stats()["snapshot_seq"] >= 4
        ledger.close()
        back = reopen(ledger_dir)
        assert back.view("u").cumulative_alpha == Fraction(999, 1000) ** 10
        assert back.view("u").releases == 10
        back.close()

    def test_verify_ledger_dir_reports_clean_state(self, ledger_dir):
        ledger = DurableLedger(ledger_dir, Fraction(1, 64))
        ledger.charge("a", HALF)
        ledger.charge("b", QUARTER)
        ledger.close()
        report = verify_ledger_dir(ledger_dir)
        assert report["ok"]
        assert report["records"] == 2
        assert report["users"] == 2
        assert report["floor"] == "1/64"

    def test_verify_catches_tampered_cumulative(self, ledger_dir):
        ledger = DurableLedger(ledger_dir)
        ledger.charge("u", HALF)
        ledger.close()
        wal = ledger_dir / "wal.jsonl"
        record = json.loads(wal.read_bytes())
        record["cum"] = "1/3"  # inconsistent with alpha product
        del record["crc"]
        from repro.release.durable_ledger import _encode_record

        wal.write_bytes(_encode_record(record))
        report = verify_ledger_dir(ledger_dir)
        assert not report["ok"]
        assert any("running product" in f for f in report["failures"])


class TestMultiInstanceSharing:
    def test_two_instances_share_one_budget(self, ledger_dir):
        a = DurableLedger(ledger_dir, Fraction(1, 8))
        b = DurableLedger(ledger_dir, Fraction(1, 8))
        assert a.charge("u", HALF).outcome == "charged"
        assert b.charge("u", HALF).outcome == "charged"
        assert a.charge("u", HALF).outcome == "charged"  # hits 1/8 == floor
        assert b.charge("u", HALF).outcome == "rejected"
        assert a.view("u").cumulative_alpha == Fraction(1, 8)
        assert b.view("u").cumulative_alpha == Fraction(1, 8)
        a.close()
        b.close()

    def test_sibling_sees_compaction(self, ledger_dir):
        a = DurableLedger(ledger_dir)
        b = DurableLedger(ledger_dir)
        a.charge("u", HALF)
        a.compact()
        a.charge("u", HALF)
        assert b.view("u").cumulative_alpha == QUARTER
        a.close()
        b.close()

    def test_concurrent_processes_never_overspend(self, ledger_dir):
        DurableLedger(ledger_dir, Fraction(1, 2) ** 10).close()
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(4) as pool:
            outcomes = pool.map(
                _charge_worker, [str(ledger_dir)] * 4
            )
        charged = sum(outcomes)
        assert charged == 10  # exactly the floor's capacity, no more
        report = verify_ledger_dir(ledger_dir)
        assert report["ok"]
        back = reopen(ledger_dir)
        assert back.view("racer").cumulative_alpha == Fraction(1, 2) ** 10
        back.close()


def _charge_worker(directory: str) -> int:
    ledger = DurableLedger(directory)
    charged = 0
    for _ in range(5):
        if ledger.charge("racer", HALF).outcome == "charged":
            charged += 1
    ledger.close()
    return charged


class TestFaultInjection:
    def test_enospc_surfaces_as_unavailable_and_heals(self, ledger_dir):
        DurableLedger(ledger_dir).close()  # settle meta.json cleanly
        faults = FaultInjector().fail_at("fs.write", after=1)
        ledger = DurableLedger(
            ledger_dir, fs=FaultyFS(faults), faults=faults
        )
        ledger.charge("u", HALF)
        with pytest.raises(LedgerUnavailableError, match="persist"):
            ledger.charge("u", HALF)
        # the failed charge spent nothing and the ledger stays usable:
        assert ledger.view("u").cumulative_alpha == HALF
        assert ledger.charge("u", HALF).outcome == "charged"
        ledger.close()
        back = reopen(ledger_dir)
        assert back.view("u").cumulative_alpha == QUARTER
        back.close()

    def test_short_write_rolls_back_cleanly(self, ledger_dir):
        DurableLedger(ledger_dir).close()
        faults = FaultInjector().short_at("fs.write", after=1, keep=7)
        ledger = DurableLedger(
            ledger_dir, fs=FaultyFS(faults), faults=faults
        )
        ledger.charge("u", HALF)
        with pytest.raises(LedgerUnavailableError):
            ledger.charge("u", HALF)
        assert ledger.charge("u", HALF).outcome == "charged"
        ledger.close()
        report = verify_ledger_dir(ledger_dir)
        assert report["ok"]
        assert report["records"] == 2

    def test_fsync_failure_marks_group_ledger_unavailable(self, ledger_dir):
        DurableLedger(ledger_dir).close()
        faults = FaultInjector().fail_at(
            "fs.fsync", exc=lambda: OSError(5, "injected EIO")
        )
        ledger = DurableLedger(
            ledger_dir, fsync="group", fs=FaultyFS(faults), faults=faults
        )
        ledger.charge("u", HALF)
        with pytest.raises(LedgerUnavailableError, match="group-commit"):
            ledger.sync()
        with pytest.raises(LedgerUnavailableError):
            ledger.charge("u", HALF)
        ledger.close()


@pytest.mark.chaos
class TestKillPointMatrix:
    """The parametrized kill matrix: crash a charge at every stage and
    assert the recovered state is floor-legal and never more permissive
    than reality (satellite 3).

    ``acked`` = how many of the 3 attempted charges were acknowledged
    (the caller saw "charged", so a response may have been released).
    The recovered cumulative must satisfy::

        floor <= recovered <= alpha ** acked      (never more permissive
                                                   than what was released)
        recovered >= alpha ** attempts            (never over-spent)
    """

    CASES = [
        # (kill point arming, acked charges after the crash)
        ("charge.before-append", 2),   # died before touching the disk
        ("fs.write-tear", 2),          # died mid-append: torn record
        ("charge.before-fsync", 2),    # bytes written, ack never sent
        ("charge.after-fsync", 3),     # durable; only the response died
    ]

    @pytest.mark.parametrize("point,acked_max", CASES)
    def test_kill_and_recover(self, tmp_path, point, acked_max):
        directory = tmp_path / "ledger"
        floor = Fraction(1, 2) ** 5
        faults = FaultInjector()
        if point == "fs.write-tear":
            faults.tear_at("fs.write", after=3, keep=10)  # meta.json first
        else:
            faults.crash_at(point, after=2)
        ledger = DurableLedger(
            directory, floor, fsync="always",
            fs=FaultyFS(faults), faults=faults,
        )
        acked = 0
        crashed = False
        for _ in range(3):
            try:
                if ledger.charge("u", HALF).outcome == "charged":
                    acked += 1
            except InjectedCrash:
                crashed = True
                break
        assert crashed, f"kill point {point} never fired"
        # the crashed instance refuses further use (it is "dead"):
        with pytest.raises(LedgerUnavailableError):
            ledger.charge("u", HALF)

        recovered = DurableLedger(directory, floor)
        budget = recovered.view("u")
        cum = Fraction(1) if budget is None else budget.cumulative_alpha
        assert acked <= acked_max
        # never more permissive than what was acknowledged/released:
        assert cum <= HALF ** acked
        # never over-spent relative to everything attempted:
        assert cum >= HALF ** 3
        assert cum >= floor
        # and the recovered ledger keeps enforcing the floor exactly:
        remaining = 0
        while recovered.charge("u", HALF).outcome == "charged":
            remaining += 1
        assert recovered.view("u").cumulative_alpha >= floor
        recovered.close()

    def test_after_fsync_crash_keeps_the_charge(self, tmp_path):
        """The ambiguous case: the charge is durable but the in-memory
        ack died. Recovery must keep it (over-protect, never refill)."""
        directory = tmp_path / "ledger"
        faults = FaultInjector().crash_at("charge.after-fsync")
        ledger = DurableLedger(directory, fsync="always", faults=faults)
        with pytest.raises(InjectedCrash):
            ledger.charge("u", HALF)
        recovered = DurableLedger(directory)
        assert recovered.view("u").cumulative_alpha == HALF
        recovered.close()

    def test_before_append_crash_spends_nothing(self, tmp_path):
        directory = tmp_path / "ledger"
        faults = FaultInjector().crash_at("charge.before-append")
        ledger = DurableLedger(directory, faults=faults)
        with pytest.raises(InjectedCrash):
            ledger.charge("u", HALF)
        recovered = DurableLedger(directory)
        assert recovered.view("u") is None
        recovered.close()
