"""Tests for the single-level publisher."""

from fractions import Fraction

import pytest

from repro.db.generators import flu_population, flu_query
from repro.exceptions import ValidationError
from repro.release.publisher import Publisher


@pytest.fixture
def publisher():
    return Publisher(flu_population(30, 3), Fraction(1, 2))


class TestPublisher:
    def test_publish_fields(self, publisher, rng):
        statistic = publisher.publish(flu_query(), rng)
        assert 0 <= statistic.value <= 30
        assert statistic.alpha == Fraction(1, 2)
        assert statistic.n == 30
        assert "San Diego" in statistic.query_description

    def test_publish_many(self, publisher, rng):
        statistics = publisher.publish_many(flu_query(), 5, rng)
        assert len(statistics) == 5

    def test_publish_many_negative(self, publisher, rng):
        with pytest.raises(ValidationError):
            publisher.publish_many(flu_query(), -1, rng)

    def test_mechanism_is_geometric_at_alpha(self, publisher):
        assert publisher.mechanism.alpha == Fraction(1, 2)
        assert publisher.mechanism.n == 30

    def test_requires_database(self):
        with pytest.raises(ValidationError):
            Publisher([1, 2], Fraction(1, 2))

    def test_published_value_distribution(self, rng):
        """Published values follow the geometric row of the true count."""
        db = flu_population(6, 11, flu_rate=0.5, san_diego_share=1.0)
        publisher = Publisher(db, Fraction(1, 3))
        true_value = flu_query()(db)
        expected = publisher.mechanism.matrix[true_value]
        import numpy as np

        draws = np.array(
            [publisher.publish(flu_query(), rng).value for _ in range(4000)]
        )
        for r in range(7):
            assert np.mean(draws == r) == pytest.approx(
                float(expected[r]), abs=0.03
            )
