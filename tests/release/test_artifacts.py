"""Tests for compiled mechanism artifacts and their store."""

import json
from fractions import Fraction

import numpy as np
import pytest

import repro
from repro.core.geometric import geometric_matrix
from repro.db.generators import flu_population, flu_query
from repro.exceptions import ValidationError
from repro.release.artifacts import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactSpec,
    ArtifactStore,
    MechanismArtifact,
    compile_artifact,
    default_artifact_store,
    resolve_artifact_store,
    set_default_artifact_store,
    verify_artifact,
)
from repro.release.publisher import Publisher
from repro.sampling.geometric import two_sided_geometric_pmf
from repro.solvers.hybrid import HybridBackend


def _database(size=5):
    return flu_population(size, size // 2)


class TestArtifactSpec:
    def test_key_is_content_addressed(self):
        a = ArtifactSpec("geometric", 5, Fraction(1, 3))
        b = ArtifactSpec("geometric", 5, Fraction(1, 3))
        c = ArtifactSpec("geometric", 5, Fraction(1, 2))
        assert a.key() == b.key()
        assert a.key() != c.key()

    def test_json_roundtrip(self):
        spec = ArtifactSpec(
            "optimal", 4, Fraction(1, 4), loss="absolute", side=(1, 3)
        )
        assert ArtifactSpec.from_json(spec.to_json()) == spec

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValidationError):
            ArtifactSpec("bespoke", 3, Fraction(1, 2))

    def test_rejects_unknown_loss(self):
        with pytest.raises(ValidationError):
            ArtifactSpec("optimal", 3, Fraction(1, 2), loss="hinge")

    def test_optimal_requires_loss(self):
        with pytest.raises(ValidationError):
            ArtifactSpec("optimal", 3, Fraction(1, 2))


class TestCompileAndVerify:
    def test_geometric_kernel_is_exact(self):
        artifact = compile_artifact("geometric", 5, Fraction(1, 3))
        assert (artifact.kernel == geometric_matrix(5, Fraction(1, 3))).all()
        assert artifact.certificate is None
        report = verify_artifact(artifact)
        assert report.ok
        assert "geometric-pmf-law" in report.checks
        assert "alias-tables-exact" in report.checks

    def test_tail_cap_mass_accounting(self):
        """Boundary columns hold exactly the folded unbounded tails."""
        artifact = compile_artifact("geometric", 4, Fraction(1, 4))
        alpha = Fraction(1, 4)
        for i in range(5):
            row = artifact.kernel[i]
            assert row[0] == alpha**i / (1 + alpha)
            assert row[4] == alpha ** (4 - i) / (1 + alpha)
            interior = sum(
                two_sided_geometric_pmf(alpha, r - i) for r in range(1, 4)
            )
            assert row[0] + interior + row[4] == 1

    def test_optimal_artifact_carries_replayable_certificate(self):
        artifact = compile_artifact(
            "optimal", 4, Fraction(1, 3), loss="absolute"
        )
        assert artifact.loss_value is not None
        assert artifact.certificate["objective"] == artifact.loss_value
        report = verify_artifact(artifact)
        assert report.ok
        assert "certificate-replay" in report.checks

    def test_verify_performs_zero_lp_solves(self, monkeypatch):
        artifact = compile_artifact(
            "optimal", 3, Fraction(1, 4), loss="absolute"
        )

        def forbidden(self, program):
            raise AssertionError("verification must not invoke a solver")

        monkeypatch.setattr(HybridBackend, "solve", forbidden)
        assert verify_artifact(artifact).ok

    def test_tampered_certificate_fails_verification(self):
        artifact = compile_artifact(
            "optimal", 3, Fraction(1, 3), loss="absolute"
        )
        artifact.certificate["objective"] += Fraction(1, 1000)
        report = verify_artifact(artifact)
        assert not report.ok
        assert any("objective" in f for f in report.failures)

    def test_tampered_kernel_fails_verification(self):
        artifact = compile_artifact("geometric", 3, Fraction(1, 2))
        kernel = artifact.kernel.copy()
        kernel[1, 1] += Fraction(1, 100)
        kernel[1, 2] -= Fraction(1, 100)
        tampered = MechanismArtifact(artifact.spec, kernel)
        report = verify_artifact(tampered)
        assert not report.ok
        assert any("geometric law" in f for f in report.failures)


class TestPayloadRoundtrip:
    def test_roundtrip_preserves_everything(self):
        artifact = compile_artifact(
            "optimal", 4, Fraction(1, 3), loss="absolute"
        )
        loaded = MechanismArtifact.from_payload(artifact.to_payload())
        assert loaded.spec == artifact.spec
        assert (loaded.kernel == artifact.kernel).all()
        assert loaded.loss_value == artifact.loss_value
        assert loaded.certificate == artifact.certificate
        for mine, theirs in zip(
            loaded.sampler.tables, artifact.sampler.tables
        ):
            assert mine.exact_thresholds == theirs.exact_thresholds
            assert (mine.alias == theirs.alias).all()
        assert verify_artifact(loaded).ok

    def test_corruption_is_detected(self):
        payload = compile_artifact(
            "geometric", 3, Fraction(1, 2)
        ).to_payload()
        payload["kernel"][0][0] = payload["kernel"][1][1]
        with pytest.raises(ValidationError, match="digest"):
            MechanismArtifact.from_payload(payload)

    def test_version_mismatch_is_rejected(self):
        payload = compile_artifact(
            "geometric", 3, Fraction(1, 2)
        ).to_payload()
        payload["version"] = ARTIFACT_FORMAT_VERSION + 1
        with pytest.raises(ValidationError, match="version"):
            MechanismArtifact.from_payload(payload)

    def test_structural_damage_is_rejected(self):
        payload = compile_artifact(
            "geometric", 3, Fraction(1, 2)
        ).to_payload()
        del payload["tables"]
        payload["digest"] = None
        with pytest.raises(ValidationError):
            MechanismArtifact.from_payload(payload)

    def test_json_serializable(self):
        payload = compile_artifact(
            "optimal", 3, Fraction(1, 3), loss="squared"
        ).to_payload()
        assert json.loads(json.dumps(payload)) == payload


class TestArtifactStore:
    def test_get_or_compile_then_disk_then_memory(self, tmp_path):
        store = ArtifactStore(tmp_path)
        spec = ArtifactSpec("geometric", 4, Fraction(1, 3))
        first = store.get_or_compile(spec)
        assert store.stats["compiles"] == 1
        again = store.get_or_compile(spec)
        assert again is first  # memory tier
        assert store.stats["compiles"] == 1
        store.clear_memory()
        loaded = store.get_or_compile(spec)  # disk tier
        assert loaded is not first
        assert (loaded.kernel == first.kernel).all()
        assert store.stats["compiles"] == 1

    def test_verify_all_flags_corrupted_entry(self, tmp_path):
        store = ArtifactStore(tmp_path)
        good = store.get_or_compile(
            ArtifactSpec("geometric", 3, Fraction(1, 2))
        )
        bad = store.get_or_compile(
            ArtifactSpec("geometric", 4, Fraction(1, 3))
        )
        path = store._entry_path(bad.key())
        payload = json.loads(path.read_text())
        payload["kernel"][0][0] = payload["kernel"][1][1]
        path.write_text(json.dumps(payload))
        store.clear_memory()
        reports = {r.key: r for r in store.verify_all()}
        assert reports[good.key()].ok
        assert not reports[bad.key()].ok
        assert any("digest" in f for f in reports[bad.key()].failures)

    def test_gc_by_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for n in (2, 3, 4, 5):
            store.get_or_compile(ArtifactSpec("geometric", n, Fraction(1, 2)))
        removed = store.gc(max_entries=2)
        assert removed == 2
        assert len(store.keys()) == 2

    def test_gc_by_age(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.get_or_compile(ArtifactSpec("geometric", 3, Fraction(1, 2)))
        assert store.gc(max_age_days=1) == 0
        assert store.gc(max_age_days=0) == 1
        assert store.keys() == []

    def test_default_store_env(self, tmp_path, monkeypatch):
        from repro.release import artifacts as artifacts_module

        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        monkeypatch.setattr(
            artifacts_module, "_default_store", artifacts_module._UNSET
        )
        store = default_artifact_store()
        assert store is not None and store.path == tmp_path
        assert resolve_artifact_store(None) is store
        assert resolve_artifact_store(False) is None
        set_default_artifact_store(None)
        assert default_artifact_store() is None

    def test_clear_caches_clears_store_memory(self, tmp_path):
        store = ArtifactStore(tmp_path)
        spec = ArtifactSpec("geometric", 3, Fraction(1, 2))
        first = store.get_or_compile(spec)
        repro.clear_caches()
        assert store.get_or_compile(spec) is not first


class TestPublisherFromArtifact:
    def test_zero_solve_publish_path(self, monkeypatch):
        artifact = compile_artifact("geometric", 5, Fraction(1, 4))

        def forbidden(self, program):
            raise AssertionError("publishing must not invoke a solver")

        monkeypatch.setattr(HybridBackend, "solve", forbidden)
        publisher = Publisher.from_artifact(_database(5), artifact)
        assert publisher.alpha == Fraction(1, 4)
        assert publisher.sampler is artifact.sampler
        query = flu_query()
        rng = np.random.default_rng(0)
        stats = publisher.publish_batch([query] * 64, rng)
        assert all(0 <= s.value <= 5 for s in stats)

    def test_artifact_database_size_mismatch_rejected(self):
        artifact = compile_artifact("geometric", 4, Fraction(1, 4))
        with pytest.raises(ValidationError):
            Publisher.from_artifact(_database(5), artifact)

    def test_artifact_alpha_mismatch_rejected(self):
        artifact = compile_artifact("geometric", 5, Fraction(1, 4))
        with pytest.raises(ValidationError):
            Publisher(_database(5), Fraction(1, 3), artifact=artifact)

    def test_matches_default_publisher_distribution(self):
        artifact = compile_artifact("geometric", 5, Fraction(1, 3))
        from_artifact = Publisher.from_artifact(_database(5), artifact)
        default = Publisher(_database(5), Fraction(1, 3))
        query = flu_query()
        a = from_artifact.publish_batch(
            [query] * 4000, np.random.default_rng(5)
        )
        b = default.publish_batch([query] * 4000, np.random.default_rng(5))
        assert [s.value for s in a] == [s.value for s in b]


class TestStoreLocking:
    def test_lock_files_invisible_to_keys_and_gc(self, tmp_path):
        store = ArtifactStore(tmp_path)
        artifact = store.get_or_compile(
            ArtifactSpec("geometric", 3, Fraction(1, 2))
        )
        lock_dir = tmp_path / ".locks"
        assert lock_dir.is_dir() and any(lock_dir.iterdir())
        assert store.keys() == [artifact.key()]
        # GC by age evicts the entry but never the lock files.
        assert store.gc(max_age_days=0) == 1
        assert store.keys() == []
        assert any(lock_dir.iterdir())

    def test_lock_is_reentrant_across_scopes(self, tmp_path):
        # put() takes the store lock while get_or_compile holds the
        # per-spec lock: distinct lock files, so no self-deadlock.
        store = ArtifactStore(tmp_path)
        spec = ArtifactSpec("geometric", 4, Fraction(1, 2))
        with store.lock(spec.key()):
            store.put(compile_artifact("geometric", 4, Fraction(1, 2)))
        assert store.get(spec) is not None

    def test_racing_threads_compile_once(self, tmp_path):
        import threading

        store = ArtifactStore(tmp_path)
        spec = ArtifactSpec("geometric", 6, Fraction(1, 3))
        compiles = []
        original = compile_artifact

        def counting_compile(*args, **kwargs):
            compiles.append(1)
            return original(*args, **kwargs)

        import repro.release.artifacts as artifacts_module

        barrier = threading.Barrier(4)
        results = []

        def worker():
            barrier.wait()
            results.append(store.get_or_compile(spec))

        try:
            artifacts_module.compile_artifact = counting_compile
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            artifacts_module.compile_artifact = original
        assert len(results) == 4
        assert all(r.key() == spec.key() for r in results)
        # The flock + post-acquire re-check collapsed the race to at
        # most one actual compile (in-memory layer may even make it 0
        # visible to some racers, but never more than 1).
        assert sum(compiles) <= 1
        assert store.get(spec) is not None
