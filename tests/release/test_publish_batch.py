"""Tests for the vectorized batch publication fast path."""

from collections import Counter
from fractions import Fraction

import numpy as np
import pytest

from repro.db.generators import flu_population, flu_query
from repro.exceptions import ValidationError
from repro.release.publisher import Publisher


@pytest.fixture
def publisher():
    return Publisher(flu_population(20, 3), Fraction(1, 2))


class TestPublishBatch:
    def test_empty_batch(self, publisher):
        assert publisher.publish_batch([]) == []

    def test_fields_and_range(self, publisher, rng):
        queries = [flu_query(), flu_query(adults_only=False)]
        statistics = publisher.publish_batch(queries, rng)
        assert len(statistics) == 2
        for statistic, query in zip(statistics, queries):
            assert 0 <= statistic.value <= publisher.n
            assert statistic.alpha == Fraction(1, 2)
            assert statistic.n == publisher.n
            assert statistic.query_description == query.describe()

    def test_seeded_batches_reproducible(self, publisher):
        queries = [flu_query()] * 50
        first = publisher.publish_batch(queries, np.random.default_rng(99))
        second = publisher.publish_batch(queries, np.random.default_rng(99))
        assert [s.value for s in first] == [s.value for s in second]

    def test_mixed_queries_reproducible(self, publisher):
        queries = [flu_query(), flu_query(adults_only=False)] * 10
        first = publisher.publish_batch(queries, np.random.default_rng(7))
        second = publisher.publish_batch(queries, np.random.default_rng(7))
        assert [s.value for s in first] == [s.value for s in second]

    def test_rejects_non_queries(self, publisher):
        with pytest.raises(ValidationError):
            publisher.publish_batch(["not a query"])

    def test_matches_publish_distribution(self, publisher):
        # publish() samples from the G matrix row; publish_batch() clamps
        # unbounded two-sided geometric noise. Definition 4 says the two
        # laws coincide; compare empirical frequencies on a common seed
        # budget against the exact row of the deployed mechanism.
        query = flu_query()
        true_value = publisher._engine.answer_exact(query)
        row = publisher.mechanism.distribution(true_value)
        draws = 4000
        batch = publisher.publish_batch(
            [query] * draws, np.random.default_rng(123)
        )
        counts = Counter(statistic.value for statistic in batch)
        for output in range(publisher.n + 1):
            expected = float(row[output])
            observed = counts.get(output, 0) / draws
            assert observed == pytest.approx(expected, abs=0.035)

    def test_matches_sequential_publish_distribution(self, publisher):
        # Same check against the sequential path itself: empirical
        # frequencies of publish() and publish_batch() must agree.
        query = flu_query()
        draws = 4000
        rng = np.random.default_rng(5)
        sequential = Counter(
            publisher.publish(query, rng).value for _ in range(draws)
        )
        batch = Counter(
            statistic.value
            for statistic in publisher.publish_batch(
                [query] * draws, np.random.default_rng(6)
            )
        )
        for output in range(publisher.n + 1):
            assert sequential.get(output, 0) / draws == pytest.approx(
                batch.get(output, 0) / draws, abs=0.04
            )
