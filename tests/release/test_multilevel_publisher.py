"""Tests for the tiered publisher."""

from fractions import Fraction

import pytest

from repro.db.database import Database
from repro.db.generators import flu_population, flu_query
from repro.db.schema import Attribute, Schema
from repro.exceptions import ValidationError
from repro.release.multilevel import MultiLevelPublisher


@pytest.fixture
def publisher():
    return MultiLevelPublisher(
        flu_population(10, 3),
        {"internet": Fraction(1, 2), "government": Fraction(1, 4)},
    )


class TestMultiLevelPublisher:
    def test_tiers_sorted_least_private_first(self, publisher):
        assert publisher.tier_names == ("government", "internet")

    def test_publish_covers_all_tiers(self, publisher, rng):
        release = publisher.publish(flu_query(), rng)
        assert set(release.results) == {"government", "internet"}
        assert release.alphas["internet"] == Fraction(1, 2)

    def test_values_in_range(self, publisher, rng):
        for _ in range(10):
            release = publisher.publish(flu_query(), rng)
            assert all(0 <= v <= 10 for v in release.results.values())

    def test_collusion_resistance_delegated(self, publisher):
        checks = publisher.verify_collusion_resistance()
        assert len(checks) == 3
        assert all(check.holds for check in checks)

    def test_duplicate_levels_rejected(self):
        schema = Schema([Attribute("x", "bool")])
        db = Database(schema, [{"x": True}])
        with pytest.raises(ValidationError):
            MultiLevelPublisher(
                db, {"a": Fraction(1, 2), "b": Fraction(1, 2)}
            )

    def test_empty_tiers_rejected(self):
        schema = Schema([Attribute("x", "bool")])
        db = Database(schema, [{"x": True}])
        with pytest.raises(ValidationError):
            MultiLevelPublisher(db, {})

    def test_requires_database(self):
        with pytest.raises(ValidationError):
            MultiLevelPublisher([], {"a": Fraction(1, 2)})

    def test_chain_exposes_algorithm1(self, publisher):
        assert publisher.chain.alphas == (Fraction(1, 4), Fraction(1, 2))
