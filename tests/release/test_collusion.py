"""Tests for the averaging collusion attack."""

from fractions import Fraction

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.release.collusion import (
    averaging_attack,
    compare_release_strategies,
)

# Levels close together: the averaging attack's gain is clearest when
# the independent copies carry comparable noise.
LEVELS = [Fraction(1, 2), Fraction(11, 20), Fraction(3, 5), Fraction(13, 20)]


class TestAveragingAttack:
    def test_perfect_samples_perfect_hit_rate(self):
        samples = np.full((100, 3), 2.0)
        result = averaging_attack(samples, 2, 4)
        assert result.hit_rate == 1.0
        assert result.mse == 0.0

    def test_noisy_samples(self):
        samples = np.array([[1, 3], [0, 4], [2, 2]])
        result = averaging_attack(samples, 2, 4)
        assert result.hit_rate == 1.0

    def test_biased_samples(self):
        samples = np.full((10, 2), 0.0)
        result = averaging_attack(samples, 3, 4)
        assert result.hit_rate == 0.0
        assert result.mse == 9.0
        assert result.mean_absolute_error == 3.0

    def test_estimates_clipped_to_range(self):
        samples = np.full((10, 1), 9.0)
        result = averaging_attack(samples, 4, 4)
        assert result.mean_absolute_error == 0.0  # clipped to 4

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            averaging_attack(np.array([1.0, 2.0]), 1, 3)


class TestStrategyComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_release_strategies(
            6, LEVELS, true_result=3, trials=4000, rng=77
        )

    def test_naive_beats_single(self, comparison):
        """Averaging k independent releases sharpens the estimate."""
        assert comparison.naive.mse < comparison.single_best.mse

    def test_chained_gains_nothing_substantial(self, comparison):
        """Against Algorithm 1, colluding is not materially better than
        the least-private release alone (Lemma 4's behavioural face)."""
        assert comparison.chained.mse >= comparison.single_best.mse * 0.9

    def test_naive_beats_chained(self, comparison):
        assert comparison.naive.mse < comparison.chained.mse

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            compare_release_strategies(4, LEVELS, 2, trials=0)
        with pytest.raises(ValidationError):
            compare_release_strategies(4, LEVELS, 9, trials=10)
