"""Tests for the privacy-budget ledger."""

import math
import threading
from fractions import Fraction

import pytest

from repro.exceptions import ValidationError
from repro.release.ledger import (
    BudgetExceededError,
    ConcurrentPrivacyLedger,
    PrivacyLedger,
)


class TestConstruction:
    def test_default_no_floor(self):
        ledger = PrivacyLedger()
        assert ledger.floor == 0
        assert ledger.cumulative_alpha == 1

    def test_floor_validated(self):
        with pytest.raises(ValidationError):
            PrivacyLedger(floor=Fraction(3, 2))

    def test_floor_of_one_rejected(self):
        with pytest.raises(ValidationError):
            PrivacyLedger(floor=1)


class TestComposition:
    def test_levels_multiply(self):
        ledger = PrivacyLedger()
        ledger.charge(Fraction(1, 2))
        ledger.charge(Fraction(1, 4))
        assert ledger.cumulative_alpha == Fraction(1, 8)

    def test_epsilons_add(self):
        ledger = PrivacyLedger()
        ledger.charge(Fraction(1, 2))
        ledger.charge(Fraction(1, 2))
        assert ledger.cumulative_epsilon == pytest.approx(2 * math.log(2))

    def test_entries_record_running_product(self):
        ledger = PrivacyLedger()
        ledger.charge(Fraction(1, 2), label="a")
        ledger.charge(Fraction(1, 3), label="b")
        assert [e.cumulative_alpha for e in ledger.entries] == [
            Fraction(1, 2),
            Fraction(1, 6),
        ]
        assert ledger.entries[1].label == "b"

    def test_len(self):
        ledger = PrivacyLedger()
        assert len(ledger) == 0
        ledger.charge(Fraction(1, 2))
        assert len(ledger) == 1


class TestEnforcement:
    def test_refuses_crossing_floor(self):
        ledger = PrivacyLedger(floor=Fraction(1, 4))
        ledger.charge(Fraction(1, 2))
        with pytest.raises(BudgetExceededError):
            ledger.charge(Fraction(1, 3))
        # Refusal leaves the ledger unchanged.
        assert ledger.cumulative_alpha == Fraction(1, 2)
        assert len(ledger) == 1

    def test_exact_boundary_allowed(self):
        ledger = PrivacyLedger(floor=Fraction(1, 4))
        ledger.charge(Fraction(1, 2))
        ledger.charge(Fraction(1, 2))  # exactly hits the floor
        assert ledger.cumulative_alpha == Fraction(1, 4)

    def test_can_afford(self):
        ledger = PrivacyLedger(floor=Fraction(1, 4))
        ledger.charge(Fraction(1, 2))
        assert ledger.can_afford(Fraction(1, 2))
        assert not ledger.can_afford(Fraction(1, 3))

    def test_remaining_alpha(self):
        ledger = PrivacyLedger(floor=Fraction(1, 8))
        ledger.charge(Fraction(1, 2))
        assert ledger.remaining_alpha == Fraction(1, 4)

    def test_remaining_alpha_capped_at_one(self):
        ledger = PrivacyLedger(floor=Fraction(1, 2))
        ledger.charge(Fraction(2, 3))
        # floor / cumulative = 3/4 < 1; charge more and it saturates.
        assert ledger.remaining_alpha == Fraction(3, 4)

    def test_no_floor_never_refuses(self):
        ledger = PrivacyLedger()
        for _ in range(10):
            ledger.charge(Fraction(1, 2))
        assert ledger.cumulative_alpha == Fraction(1, 1024)


class TestTryCharge:
    def test_returns_true_and_records(self):
        ledger = PrivacyLedger(floor=Fraction(1, 4))
        assert ledger.try_charge(Fraction(1, 2))
        assert ledger.cumulative_alpha == Fraction(1, 2)

    def test_returns_false_without_recording(self):
        ledger = PrivacyLedger(floor=Fraction(1, 4))
        ledger.charge(Fraction(1, 2))
        assert not ledger.try_charge(Fraction(1, 3))
        assert ledger.cumulative_alpha == Fraction(1, 2)
        assert len(ledger) == 1


class TestConcurrentLedger:
    def test_is_a_ledger(self):
        ledger = ConcurrentPrivacyLedger(floor=Fraction(1, 4))
        ledger.charge(Fraction(1, 2))
        with pytest.raises(BudgetExceededError):
            ledger.charge(Fraction(1, 3))
        assert ledger.cumulative_alpha == Fraction(1, 2)

    def test_racers_never_overspend_floor(self):
        # Floor (1/2)^K admits exactly K successful alpha=1/2 charges;
        # far more racers all try at once, and the exact-arithmetic
        # accounting must admit exactly K of them no matter the
        # interleaving.
        K = 16
        ledger = ConcurrentPrivacyLedger(floor=Fraction(1, 2) ** K)
        outcomes = []
        barrier = threading.Barrier(8)

        def racer():
            barrier.wait()
            for _ in range(K):  # 8 threads x K attempts >> K slots
                outcomes.append(ledger.try_charge(Fraction(1, 2)))

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(outcomes) == K
        assert ledger.cumulative_alpha == Fraction(1, 2) ** K
        assert ledger.cumulative_alpha >= ledger.floor
        assert len(ledger) == K

    def test_concurrent_mixed_alphas_respect_floor(self):
        ledger = ConcurrentPrivacyLedger(floor=Fraction(1, 64))
        alphas = [Fraction(1, 2), Fraction(1, 4), Fraction(3, 4)] * 20
        barrier = threading.Barrier(6)

        def racer(chunk):
            barrier.wait()
            for alpha in chunk:
                ledger.try_charge(alpha)

        threads = [
            threading.Thread(target=racer, args=(alphas[i::6],))
            for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Whatever interleaving happened, the invariant held.
        assert ledger.cumulative_alpha >= ledger.floor
        product = Fraction(1)
        for entry in ledger.entries:
            product *= entry.alpha
        assert product == ledger.cumulative_alpha


class TestReport:
    def test_report_mentions_everything(self):
        ledger = PrivacyLedger(floor=Fraction(1, 16))
        ledger.charge(Fraction(1, 2), label="flu count")
        text = ledger.report()
        assert "flu count" in text
        assert "1/2" in text
        assert "joint guarantee" in text
