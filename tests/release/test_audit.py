"""Tests for empirical privacy auditing."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.geometric import GeometricMechanism
from repro.core.mechanism import Mechanism
from repro.exceptions import ValidationError
from repro.release.audit import (
    empirical_alpha,
    empirical_mechanism_matrix,
)


class TestEmpiricalMatrix:
    def test_rows_are_distributions(self, g3_half, rng):
        estimated = empirical_mechanism_matrix(g3_half, 500, rng)
        assert np.allclose(estimated.sum(axis=1), 1.0)

    def test_converges_to_truth(self, g3_half, rng):
        estimated = empirical_mechanism_matrix(g3_half, 40000, rng)
        truth = np.asarray(g3_half.matrix, dtype=float)
        assert np.abs(estimated - truth).max() < 0.02

    def test_smoothing_avoids_zeros(self, rng):
        # Identity has true zeros; smoothing keeps the estimate positive.
        estimated = empirical_mechanism_matrix(
            Mechanism.identity(2), 100, rng, smoothing=0.5
        )
        assert (estimated > 0).all()

    def test_no_smoothing_allows_zeros(self, rng):
        estimated = empirical_mechanism_matrix(
            Mechanism.identity(2), 100, rng, smoothing=0.0
        )
        assert estimated[0, 1] == 0.0

    def test_parameter_validation(self, g3_half, rng):
        with pytest.raises(ValidationError):
            empirical_mechanism_matrix(g3_half, 0, rng)
        with pytest.raises(ValidationError):
            empirical_mechanism_matrix(g3_half, 10, rng, smoothing=-1)


class TestEmpiricalAlpha:
    def test_geometric_audit_consistent(self, rng):
        mechanism = GeometricMechanism(3, Fraction(1, 2))
        report = empirical_alpha(mechanism, 20000, rng)
        assert report.exact_alpha == Fraction(1, 2)
        assert report.empirical_alpha == pytest.approx(0.5, abs=0.05)
        assert report.consistent

    def test_claimed_alpha_recorded(self, rng):
        mechanism = GeometricMechanism(2, Fraction(1, 4))
        report = empirical_alpha(mechanism, 5000, rng)
        assert report.claimed_alpha == Fraction(1, 4)

    def test_epsilon_reported(self, rng):
        import math

        mechanism = GeometricMechanism(2, Fraction(1, 2))
        report = empirical_alpha(mechanism, 20000, rng)
        assert report.empirical_epsilon == pytest.approx(
            math.log(2), abs=0.15
        )

    def test_uniform_audits_as_absolutely_private(self, rng):
        report = empirical_alpha(Mechanism.uniform(2), 20000, rng)
        assert report.exact_alpha == 1
        assert report.empirical_alpha > 0.9
