"""Integration tests for Theorem 1 — both claims, end to end."""

from fractions import Fraction

import pytest

from repro.agents.minimax import MinimaxAgent
from repro.agents.side_information import SideInformation
from repro.core.geometric import GeometricMechanism
from repro.core.multilevel import MultiLevelRelease
from repro.losses import (
    AbsoluteLoss,
    CappedLoss,
    ScaledLoss,
    SquaredLoss,
    ThresholdLoss,
    ZeroOneLoss,
)

ALPHAS = [Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)]
LOSSES = [
    AbsoluteLoss(),
    SquaredLoss(),
    ZeroOneLoss(),
    CappedLoss(AbsoluteLoss(), 2),
    ScaledLoss(SquaredLoss(), Fraction(1, 2)),
    ThresholdLoss(1),
]
SIDE_INFOS = [None, {0, 1}, {2, 3}, {0, 3}, {1, 2, 3}]


class TestSimultaneousUtilityMaximization:
    """Part 2: one deployed G serves every consumer optimally."""

    @pytest.mark.parametrize("alpha", ALPHAS)
    @pytest.mark.parametrize("loss", LOSSES, ids=lambda l: l.describe())
    def test_across_losses(self, alpha, loss):
        agent = MinimaxAgent(loss, None, n=3)
        deployed = GeometricMechanism(3, alpha)
        interaction = agent.best_interaction(deployed, exact=True)
        bespoke = agent.bespoke_mechanism(alpha, exact=True)
        assert interaction.loss == bespoke.loss

    @pytest.mark.parametrize("side", SIDE_INFOS, ids=str)
    def test_across_side_information(self, side):
        alpha = Fraction(1, 2)
        agent = MinimaxAgent(AbsoluteLoss(), side, n=3)
        deployed = GeometricMechanism(3, alpha)
        interaction = agent.best_interaction(deployed, exact=True)
        bespoke = agent.bespoke_mechanism(alpha, exact=True)
        assert interaction.loss == bespoke.loss

    def test_one_deployment_many_consumers(self):
        """The non-interactive story: publish once, each consumer's own
        post-processing recovers its personal optimum."""
        alpha = Fraction(1, 2)
        deployed = GeometricMechanism(3, alpha)
        consumers = [
            MinimaxAgent(AbsoluteLoss(), None, n=3, name="government"),
            MinimaxAgent(
                SquaredLoss(),
                SideInformation.at_least(1, n=3),
                n=3,
                name="drug-company",
            ),
            MinimaxAgent(
                ZeroOneLoss(),
                SideInformation.at_most(2, n=3),
                n=3,
                name="journalist",
            ),
        ]
        for agent in consumers:
            interaction = agent.best_interaction(deployed, exact=True)
            bespoke = agent.bespoke_mechanism(alpha, exact=True)
            assert interaction.loss == bespoke.loss, agent.name

    @pytest.mark.parametrize("n", [1, 2, 4, 5])
    def test_across_database_sizes(self, n):
        alpha = Fraction(1, 3)
        agent = MinimaxAgent(AbsoluteLoss(), None, n=n)
        deployed = GeometricMechanism(n, alpha)
        interaction = agent.best_interaction(deployed, exact=True)
        bespoke = agent.bespoke_mechanism(alpha, exact=True)
        assert interaction.loss == bespoke.loss

    def test_float_pipeline_matches_exact(self):
        agent = MinimaxAgent(SquaredLoss(), {1, 2}, n=4)
        exact_g = GeometricMechanism(4, Fraction(1, 2))
        float_g = GeometricMechanism(4, 0.5)
        exact_loss = agent.best_interaction(exact_g, exact=True).loss
        float_loss = agent.best_interaction(float_g, exact=False).loss
        assert float(exact_loss) == pytest.approx(float_loss, abs=1e-7)


class TestCollusionResistantRelease:
    """Part 1: the multi-level release leaks nothing beyond alpha_min."""

    def test_release_then_interact(self, rng):
        """Full pipeline: Algorithm 1 release + per-tier rational use."""
        release = MultiLevelRelease(3, ALPHAS)
        agent = MinimaxAgent(AbsoluteLoss(), {1, 2, 3}, n=3)
        for level, alpha in enumerate(ALPHAS):
            deployed = release.mechanism(level)
            interaction = agent.best_interaction(deployed, exact=True)
            bespoke = agent.bespoke_mechanism(alpha, exact=True)
            assert interaction.loss == bespoke.loss

    def test_both_theorem_parts_together(self):
        """Theorem 1 verbatim: k consumers, k levels, one chain."""
        release = MultiLevelRelease(2, [Fraction(1, 4), Fraction(1, 2)])
        # Part 1: every coalition bounded by its least-private member.
        assert all(c.holds for c in release.verify_all_coalitions())
        # Part 2: each consumer's interaction with its own tier is optimal.
        for level, alpha in enumerate(release.alphas):
            agent = MinimaxAgent(SquaredLoss(), None, n=2)
            interaction = agent.best_interaction(
                release.mechanism(level), exact=True
            )
            bespoke = agent.bespoke_mechanism(alpha, exact=True)
            assert interaction.loss == bespoke.loss
