"""Integration at survey scale: the float pipeline for large n.

The exact simplex reproduces the paper's tables at small n; real surveys
have hundreds of rows. These tests exercise the HiGHS path at n = 40-60
and check that Theorem 1 continues to hold to solver precision.
"""

import numpy as np
import pytest

from repro.core.geometric import GeometricMechanism
from repro.core.interaction import optimal_interaction
from repro.core.optimal import optimal_mechanism
from repro.core.privacy import is_differentially_private, tightest_alpha
from repro.losses import AbsoluteLoss, SquaredLoss


class TestLargeN:
    @pytest.mark.parametrize("n", [40, 60])
    def test_universality_at_scale(self, n):
        alpha = 0.5
        bespoke = optimal_mechanism(n, alpha, AbsoluteLoss(), exact=False)
        interaction = optimal_interaction(
            GeometricMechanism(n, alpha), AbsoluteLoss(), exact=False
        )
        assert interaction.loss == pytest.approx(bespoke.loss, abs=1e-5)

    def test_side_information_at_scale(self):
        n, alpha = 50, 0.4
        side = set(range(20, 31))
        bespoke = optimal_mechanism(
            n, alpha, SquaredLoss(), side, exact=False
        )
        interaction = optimal_interaction(
            GeometricMechanism(n, alpha), SquaredLoss(), side, exact=False
        )
        assert interaction.loss == pytest.approx(bespoke.loss, abs=1e-4)
        assert is_differentially_private(
            bespoke.mechanism, alpha, atol=1e-7
        )

    def test_geometric_properties_at_scale(self):
        n, alpha = 100, 0.3
        g = GeometricMechanism(n, alpha)
        assert tightest_alpha(g) == pytest.approx(alpha)
        sums = np.asarray(g.matrix, dtype=float).sum(axis=1)
        assert np.allclose(sums, 1.0)

    def test_interaction_loss_bounded_by_face_value_at_scale(self):
        n, alpha = 40, 0.6
        g = GeometricMechanism(n, alpha)
        face_value = float(g.worst_case_loss(AbsoluteLoss()))
        interaction = optimal_interaction(g, AbsoluteLoss(), exact=False)
        assert interaction.loss <= face_value + 1e-9
