"""Integration tests for Lemmas 1, 3, 5 and Appendix A as wholes."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.characterization import (
    geometric_determinant,
    gprime_determinant,
)
from repro.core.derivability import privacy_chain_kernel
from repro.core.geometric import GeometricMechanism, gprime_matrix
from repro.core.multilevel import MultiLevelRelease
from repro.core.oblivious import random_nonoblivious_mechanism
from repro.core.optimal import optimal_mechanism
from repro.core.structure import analyze_structure
from repro.losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss
from repro.losses.random import random_monotone_loss


class TestLemma1EndToEnd:
    @pytest.mark.parametrize("n", range(1, 7))
    @pytest.mark.parametrize("alpha", [Fraction(1, 3), Fraction(2, 3)])
    def test_induction_chain(self, n, alpha):
        """det G'_{m} = (1 - a^2) det G'_{m-1} — the paper's induction."""
        if n >= 2:
            assert gprime_determinant(n + 1, alpha) == (
                1 - alpha**2
            ) * gprime_determinant(n, alpha)
        assert gprime_matrix(n, alpha).determinant() == gprime_determinant(
            n + 1, alpha
        )

    @pytest.mark.parametrize("n", range(1, 6))
    def test_nonsingularity_enables_unique_factors(self, n):
        """det G > 0 means the derivation factor is unique; verify by
        solving through two independent routes."""
        alpha = Fraction(1, 2)
        assert geometric_determinant(n + 1, alpha) > 0
        g = GeometricMechanism(n, alpha).to_rational_matrix()
        assert g.determinant() == geometric_determinant(n + 1, alpha)


class TestLemma3Chain:
    def test_three_stage_chain_exact(self):
        """Algorithm 1's kernels compose into the direct kernel."""
        n = 3
        levels = [Fraction(1, 5), Fraction(2, 5), Fraction(4, 5)]
        t_01 = privacy_chain_kernel(n, levels[0], levels[1])
        t_12 = privacy_chain_kernel(n, levels[1], levels[2])
        t_02 = privacy_chain_kernel(n, levels[0], levels[2])
        assert (np.dot(t_01, t_12) == t_02).all()

    def test_release_marginals_match_direct_mechanisms(self):
        n = 2
        levels = [Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)]
        release = MultiLevelRelease(n, levels)
        for level, alpha in enumerate(levels):
            direct = GeometricMechanism(n, alpha).matrix
            for i in range(n + 1):
                joint = release.joint_distribution(i)
                for r in range(n + 1):
                    marginal = sum(
                        p
                        for pattern, p in joint.items()
                        if pattern[level] == r
                    )
                    assert marginal == direct[i, r]


class TestLemma5EndToEnd:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_consumers_have_structured_optima(self, seed):
        """Lexicographically-refined optima satisfy Lemma 5's pattern for
        random monotone losses, not just the textbook ones."""
        alpha = Fraction(1, 2)
        loss = random_monotone_loss(3, rng=np.random.default_rng(seed))
        result = optimal_mechanism(3, alpha, loss, exact=True, refine=True)
        report = analyze_structure(result.mechanism, alpha)
        assert report.conforms, (seed, report.pairs)

    @pytest.mark.parametrize(
        "loss", [AbsoluteLoss(), SquaredLoss(), ZeroOneLoss()],
        ids=lambda l: l.describe(),
    )
    def test_structure_across_alphas(self, loss):
        for alpha in (Fraction(1, 5), Fraction(1, 2), Fraction(4, 5)):
            result = optimal_mechanism(
                2, alpha, loss, exact=True, refine=True
            )
            assert analyze_structure(result.mechanism, alpha).conforms


class TestAppendixAEndToEnd:
    @pytest.mark.parametrize("seed", range(4))
    def test_full_reduction_pipeline(self, seed):
        """Sample non-oblivious DP mechanism -> average -> check both
        Lemma 6 guarantees, then confirm the result interoperates with
        the rest of the library (privacy check + derivability report)."""
        from repro.core.derivability import check_derivability
        from repro.core.privacy import is_differentially_private

        alpha = 0.5
        rng = np.random.default_rng(seed)
        mechanism = random_nonoblivious_mechanism(3, alpha, rng)
        averaged = mechanism.obliviate()
        assert is_differentially_private(averaged, alpha, atol=1e-12)
        for loss in (AbsoluteLoss(), SquaredLoss()):
            assert float(averaged.worst_case_loss(loss)) <= float(
                mechanism.worst_case_loss(loss)
            ) + 1e-12
        # The averaged mechanism is a first-class Mechanism: the
        # characterization machinery accepts it.
        report = check_derivability(averaged, alpha)
        assert report.factor.shape == (4, 4)
