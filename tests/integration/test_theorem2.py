"""Integration tests for Theorem 2 and its Lemma 2 machinery.

These tests tie the three implementations of derivability together:
(1) the closed-form stencil factor, (2) explicit exact inversion via
Cramer's rule (the paper's proof route), and (3) the entrywise
three-entry conditions.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.characterization import replaced_column_determinant
from repro.core.derivability import check_derivability, derivation_factor
from repro.core.geometric import GeometricMechanism, column_scaling, gprime_matrix
from repro.core.optimal import optimal_mechanism
from repro.linalg.rational import RationalMatrix
from repro.linalg.stochastic import random_stochastic_matrix
from repro.losses import AbsoluteLoss, SquaredLoss, ZeroOneLoss


class TestCramerRoute:
    """Reproduce the paper's proof computation directly."""

    @pytest.mark.parametrize("alpha", [Fraction(1, 4), Fraction(1, 2)])
    def test_factor_entries_via_cramers_rule(self, alpha, rng):
        """t[i,j] = det G'(i, m'_j) / det G' with the column scaling of
        Table 2 — exactly the quantity Lemma 2 evaluates."""
        n = 3
        size = n + 1
        target = random_stochastic_matrix(size, rng=rng, exact=True)
        factor = derivation_factor(target, alpha)

        gp = gprime_matrix(n, alpha)
        det_gp = gp.determinant()
        scaling = column_scaling(n, alpha)
        for j in range(size):
            column = [target[i, j] for i in range(size)]
            for i in range(size):
                # T = D^{-1} G'^{-1} M  =>  row scaling by 1/c_i.
                cramer = (
                    replaced_column_determinant(size, alpha, i, column)
                    / det_gp
                    / scaling[i]
                )
                assert factor[i, j] == cramer

    def test_paper_proof_chain_on_appendix_b(self):
        """The explicit G^{-1} M computation the appendix suggests."""
        from repro.core.counterexample import appendix_b_mechanism

        alpha = Fraction(1, 2)
        g = GeometricMechanism(3, alpha).to_rational_matrix()
        m = appendix_b_mechanism().to_rational_matrix()
        explicit = g.inverse() @ m
        stencil = derivation_factor(appendix_b_mechanism(), alpha)
        assert (stencil == explicit.to_numpy()).all()
        # Negative entry in column 1 — the non-derivability witness.
        assert any(explicit[i, 1] < 0 for i in range(4))


class TestOptimalMechanismsAreDerivable:
    """Theorem 1's proof core: LP optima pass Theorem 2's test."""

    @pytest.mark.parametrize(
        "loss", [AbsoluteLoss(), SquaredLoss(), ZeroOneLoss()],
        ids=lambda l: l.describe(),
    )
    @pytest.mark.parametrize("alpha", [Fraction(1, 4), Fraction(1, 2)])
    def test_refined_optimum_derivable(self, loss, alpha):
        result = optimal_mechanism(3, alpha, loss, exact=True, refine=True)
        report = check_derivability(result.mechanism, alpha)
        assert report.derivable

    @pytest.mark.parametrize("side", [None, {0, 1}, {1, 2, 3}], ids=str)
    def test_refined_optimum_derivable_with_side_info(self, side):
        alpha = Fraction(1, 2)
        result = optimal_mechanism(
            3, alpha, AbsoluteLoss(), side, exact=True, refine=True
        )
        assert check_derivability(result.mechanism, alpha).derivable

    def test_factorization_reconstructs_optimum(self):
        """optimal == G @ T for the extracted T (Table 1's identity)."""
        alpha = Fraction(1, 4)
        result = optimal_mechanism(3, alpha, AbsoluteLoss(), exact=True)
        factor = derivation_factor(result.mechanism, alpha)
        g = GeometricMechanism(3, alpha)
        product = np.dot(g.matrix, factor)
        assert (product == result.mechanism.matrix).all()


class TestNonDerivablePrivateMechanismsExist:
    """Section 4.2's remark: DP does not imply derivability."""

    def test_explicit_family(self):
        """Scaling Appendix B's idea: mechanisms with an interior row
        dipping below the three-entry bound stay DP but not derivable."""
        alpha = Fraction(1, 2)
        from repro.core.privacy import is_differentially_private

        matrix = np.array(
            [
                [Fraction(1, 9), Fraction(2, 9), Fraction(4, 9), Fraction(2, 9)],
                [Fraction(2, 9), Fraction(1, 9), Fraction(2, 9), Fraction(4, 9)],
                [Fraction(4, 9), Fraction(2, 9), Fraction(1, 9), Fraction(2, 9)],
                [Fraction(13, 18), Fraction(1, 9), Fraction(1, 18), Fraction(1, 9)],
            ],
            dtype=object,
        )
        assert is_differentially_private(matrix, alpha)
        assert not check_derivability(matrix, alpha).derivable
