"""Integration: CSV ingest -> private release -> ledger -> audit."""

from fractions import Fraction

import pytest

from repro.db.generators import FLU_SCHEMA, flu_population, flu_query
from repro.db.io import database_from_csv, database_to_csv
from repro.release.audit import empirical_alpha
from repro.release.ledger import BudgetExceededError, PrivacyLedger
from repro.release.publisher import Publisher


class TestCsvToReleasePipeline:
    def test_full_pipeline(self, rng):
        # 1. Survey data arrives as CSV.
        original = flu_population(8, 99)
        csv_text = database_to_csv(original)

        # 2. Ingest with schema validation.
        database = database_from_csv(csv_text, FLU_SCHEMA)
        assert database.size == original.size

        # 3. Publish under a budget.
        ledger = PrivacyLedger(floor=Fraction(1, 8))
        publisher = Publisher(database, Fraction(1, 2))
        query = flu_query()

        for _ in range(3):
            assert ledger.can_afford(Fraction(1, 2))
            statistic = publisher.publish(query, rng)
            ledger.charge(Fraction(1, 2), label=statistic.query_description)
            assert 0 <= statistic.value <= database.size

        # 4. The fourth release would cross the floor.
        assert ledger.cumulative_alpha == Fraction(1, 8)
        with pytest.raises(BudgetExceededError):
            ledger.charge(Fraction(1, 2), label="one too many")

        # 5. Audit the deployed mechanism empirically. At n=8 the
        # boundary cells have mass ~alpha^8, so the ratio estimates
        # need both more samples and a looser consistency slack.
        report = empirical_alpha(
            publisher.mechanism, 30000, rng, slack=0.15
        )
        assert report.exact_alpha == Fraction(1, 2)
        assert report.consistent

    def test_csv_round_trip_preserves_query_results(self):
        original = flu_population(20, 5)
        reparsed = database_from_csv(
            database_to_csv(original), FLU_SCHEMA
        )
        query = flu_query()
        assert query(reparsed) == query(original)
