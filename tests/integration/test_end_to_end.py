"""End-to-end scenario tests: the paper's flu survey, fully wired."""

from fractions import Fraction

import numpy as np
import pytest

from repro.agents.minimax import MinimaxAgent
from repro.agents.side_information import SideInformation
from repro.agents.rationality import interact_and_report
from repro.db.generators import (
    drug_purchases_lower_bound,
    flu_population,
    flu_query,
)
from repro.losses import AbsoluteLoss, SquaredLoss
from repro.release.multilevel import MultiLevelPublisher
from repro.release.publisher import Publisher


class TestFluSurveyScenario:
    """The paper's introduction, executed end to end."""

    @pytest.fixture(scope="class")
    def database(self):
        # Small population: the bespoke LP is solved exactly below, and
        # the exact simplex is comfortable up to n ~ 6.
        return flu_population(6, 2024, flu_rate=0.4, san_diego_share=0.8)

    def test_publish_and_rationally_consume(self, database, rng):
        n = database.size
        alpha = Fraction(1, 2)
        publisher = Publisher(database, alpha)
        query = flu_query()
        true_value = query(database)

        # The drug company knows its sales lower-bound the count.
        lower = drug_purchases_lower_bound(database)
        assert lower <= true_value
        company = MinimaxAgent(
            SquaredLoss(),
            SideInformation.at_least(lower, n=n),
            n=n,
            name="drug-company",
        )

        deployed = publisher.mechanism
        trace = interact_and_report(
            company, deployed, true_value, rng, exact=True
        )
        assert trace.reinterpreted >= lower  # rationality in action

    def test_universality_for_both_consumers(self, database):
        """Government (absolute loss) and company (squared loss + bound)
        each get their personal optimum from the same deployment."""
        n = database.size
        alpha = Fraction(1, 2)
        publisher = Publisher(database, alpha)
        lower = drug_purchases_lower_bound(database)

        government = MinimaxAgent(AbsoluteLoss(), None, n=n)
        company = MinimaxAgent(
            SquaredLoss(), SideInformation.at_least(lower, n=n), n=n
        )
        for agent in (government, company):
            interaction = agent.best_interaction(
                publisher.mechanism, exact=True
            )
            bespoke = agent.bespoke_mechanism(alpha, exact=True)
            assert interaction.loss == bespoke.loss

    def test_two_tier_report(self, database, rng):
        """Executive vs Internet tiers (Section 2.6's motivation)."""
        publisher = MultiLevelPublisher(
            database,
            {"executives": Fraction(1, 4), "internet": Fraction(2, 3)},
        )
        release = publisher.publish(flu_query(), rng)
        assert set(release.results) == {"executives", "internet"}
        assert all(c.holds for c in publisher.verify_collusion_resistance())

    def test_repeated_releases_track_truth_on_average(self, database, rng):
        """Sanity: geometric noise is unbiased away from the boundary."""
        publisher = Publisher(database, Fraction(1, 3))
        query = flu_query()
        true_value = query(database)
        values = [
            publisher.publish(query, rng).value for _ in range(3000)
        ]
        if 2 <= true_value <= database.size - 2:
            assert np.mean(values) == pytest.approx(true_value, abs=0.25)


class TestAuditPipeline:
    def test_deployed_mechanism_passes_audit(self, rng):
        from repro.release.audit import empirical_alpha

        db = flu_population(8, 5)
        publisher = Publisher(db, Fraction(1, 2))
        report = empirical_alpha(publisher.mechanism, 20000, rng)
        assert report.consistent
        assert report.exact_alpha == Fraction(1, 2)
