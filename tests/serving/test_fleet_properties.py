"""Property suite for admission control plus the spawn-pool fleet race.

Three properties, each load-bearing for the fleet story:

* **ticket conservation** — the admission controller's in-flight count
  equals admits minus releases and never exceeds the configured bound,
  under any interleaving;
* **shed-is-free / admitted-charges-once** — on a live server, the
  ledger's recorded releases equal exactly the number of 200 responses:
  a shed request charged nothing, an admitted one charged once;
* **fleet-wide floor capacity** — N real server processes over ONE
  shared durable ledger admit exactly the floor's worth of releases for
  a shared user, no matter how the processes race.
"""

import asyncio
import multiprocessing
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.release.artifacts import ArtifactSpec, ArtifactStore
from repro.release.durable_ledger import DurableLedger, verify_ledger_dir
from repro.serving import AdmissionController, InProcessClient, MechanismServer

HALF = Fraction(1, 2)


class TestAdmissionProperties:
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        ops=st.lists(
            st.one_of(
                st.just("admit"),
                st.floats(min_value=0.0, max_value=0.5),  # release(elapsed)
            ),
            max_size=200,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_ticket_conservation_and_bound(self, capacity, ops):
        gate = AdmissionController(capacity=capacity)
        outstanding = 0
        for op in ops:
            if op == "admit":
                if gate.try_admit() is None:
                    outstanding += 1
            else:
                gate.release(op)
                outstanding = max(0, outstanding - 1)
            assert gate.inflight == outstanding
            assert gate.inflight <= capacity
            assert gate.service_ewma >= 0.0
        assert gate.stats["admitted"] >= gate.stats["peak_inflight"]

    @given(
        depth=st.integers(min_value=1, max_value=4),
        burst=st.integers(min_value=1, max_value=10),
        deadlines=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_shed_never_charged_admitted_charged_exactly_once(
        self, tmp_path_factory, depth, burst, deadlines
    ):
        store = ArtifactStore(
            tmp_path_factory.mktemp("artifacts") / "store"
        )
        store.get_or_compile(ArtifactSpec("geometric", 8, HALF))
        server = MechanismServer(
            store, queue_depth=depth, batch_window=0.02,
            audit_rate=0.0, seed=3,
        )
        server.load_store()
        client = InProcessClient(server)

        async def go():
            payloads = []
            for i in range(burst):
                payload = {
                    "user": f"u{i}",
                    "n": 8,
                    "alpha": "1/2",
                    "true_result": 3,
                }
                if deadlines and i % 2:
                    payload["deadline_ms"] = 50.0
                payloads.append(payload)
            results = await asyncio.gather(
                *(server.publish(p) for p in payloads)
            )
            await server.stop()
            return results

        results = asyncio.run(go())
        oks = sum(1 for status, _ in results if status == 200)
        sheds = sum(1 for status, _ in results if status in (429, 503))
        assert oks + sheds == burst
        assert oks >= 1  # the bound admits at least one
        # THE invariant: every 200 charged once, every shed charged
        # never — the books show exactly `oks` users with one release.
        assert server.ledgers.users() == oks
        assert server.metrics["shed"] == sheds
        for status, body in results:
            if status != 200:
                assert body["shed"] in ("queue_full", "deadline")
                assert body["retry_after"] > 0


class TestSpawnPoolFleet:
    def test_fleet_admits_exactly_the_floor_capacity(self, tmp_path):
        """4 real server processes, one WAL, one shared user with room
        for 10 releases at alpha=1/2: exactly 10 of the 20 racing
        publishes are admitted, fleet-wide, and the journal survives
        verification."""
        store_dir = tmp_path / "artifacts"
        ledger_dir = tmp_path / "ledger"
        store = ArtifactStore(store_dir)
        store.get_or_compile(ArtifactSpec("geometric", 8, HALF))
        floor = HALF ** 10
        DurableLedger(ledger_dir, floor).close()  # settle meta/floor
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(4) as pool:
            outcomes = pool.map(
                _fleet_worker,
                [(str(store_dir), str(ledger_dir), str(floor))] * 4,
            )
        assert sum(outcomes) == 10
        report = verify_ledger_dir(ledger_dir)
        assert report["ok"], report["failures"]
        back = DurableLedger(ledger_dir)
        assert back.view("shared").cumulative_alpha == floor
        back.close()


def _fleet_worker(args: tuple) -> int:
    """One fleet member: publish 5 statistics for the shared user."""
    store_dir, ledger_dir, floor = args
    server = MechanismServer(
        ArtifactStore(store_dir), ledger_dir=ledger_dir,
        floor=Fraction(floor),
        batch_window=0.001, audit_rate=0.0, seed=5,
    )
    server.load_store()
    client = InProcessClient(server)

    async def go() -> int:
        oks = 0
        for _ in range(5):
            status, _ = await client.publish(
                user="shared", n=8, alpha="1/2", true_result=3
            )
            if status == 200:
                oks += 1
        await server.stop()
        return oks

    return asyncio.run(go())
