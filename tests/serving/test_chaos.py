"""Chaos suite: kill the serving stack mid-traffic and prove the
durability invariants (run with ``pytest -m chaos``; also part of the
default run).

The two invariants every scenario asserts after recovery:

* **no user exceeds the floor** — the recovered cumulative guarantee is
  at or above (never below) the configured floor;
* **no admitted charge is lost** — every request the client saw a 200
  for has its charge in the recovered ledger: the recovered cumulative
  is at most ``alpha ** acknowledged_responses``.

Crashes can only over-protect (charges journaled for responses that
never went out), never refill a budget.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from fractions import Fraction

import pytest

from repro.release.artifacts import ArtifactSpec, ArtifactStore
from repro.release.durable_ledger import DurableLedger, verify_ledger_dir
from repro.serving import (
    FaultInjector,
    HTTPServingClient,
    InProcessClient,
    InjectedCrash,
    MechanismServer,
)

pytestmark = pytest.mark.chaos

HALF = Fraction(1, 2)


@pytest.fixture()
def store(tmp_path):
    store = ArtifactStore(tmp_path / "artifacts")
    store.get_or_compile(ArtifactSpec("geometric", 8, HALF))
    return store


def make_server(store, ledger_dir, *, faults=None, floor=HALF ** 6,
                **kwargs):
    kwargs.setdefault("batch_window", 0.001)
    kwargs.setdefault("audit_rate", 0.0)
    kwargs.setdefault("seed", 11)
    server = MechanismServer(
        store, floor=floor, ledger_dir=ledger_dir, faults=faults, **kwargs
    )
    server.load_store()
    return server


class TestInProcessKillAndRecover:
    """Deterministic crashes injected at named points mid-traffic."""

    @pytest.mark.parametrize(
        "point",
        [
            "charge.before-append",
            "charge.before-fsync",
            "charge.after-fsync",
            "batcher.before-execute",
            "server.before-response",
        ],
    )
    def test_crash_point_mid_traffic(self, store, tmp_path, point):
        ledger_dir = tmp_path / "ledger"
        floor = HALF ** 6
        faults = FaultInjector().crash_at(point, after=3)

        async def traffic():
            server = make_server(store, ledger_dir, faults=faults)
            client = InProcessClient(server)
            acked = 0
            crashed = False
            for index in range(10):
                try:
                    status, _ = await client.publish(
                        user="victim", n=8, alpha="1/2",
                        true_result=3, idem=f"req-{index}",
                    )
                except InjectedCrash:
                    crashed = True
                    break
                if status == 200:
                    acked += 1
                elif status == 503:
                    break  # the ledger died with the injected crash
            # do NOT call server.stop(): the process "died"
            return acked, crashed

        acked, crashed = asyncio.run(traffic())
        assert crashed or point == "server.before-response"

        report = verify_ledger_dir(ledger_dir)
        assert report["ok"], report["failures"]
        recovered = DurableLedger(ledger_dir, floor)
        budget = recovered.view("victim")
        cum = Fraction(1) if budget is None else budget.cumulative_alpha
        assert cum >= floor                # floor-legal
        assert cum <= HALF ** acked        # no acked charge lost
        recovered.close()

    def test_recovered_server_keeps_enforcing_the_floor(
        self, store, tmp_path
    ):
        ledger_dir = tmp_path / "ledger"
        floor = HALF ** 4
        faults = FaultInjector().crash_at("charge.after-fsync", after=1)

        async def first_life():
            server = make_server(
                store, ledger_dir, faults=faults, floor=floor
            )
            client = InProcessClient(server)
            await client.publish(
                user="u", n=8, alpha="1/2", true_result=3
            )
            with pytest.raises(InjectedCrash):
                await client.publish(
                    user="u", n=8, alpha="1/2", true_result=3
                )

        asyncio.run(first_life())

        async def second_life():
            server = make_server(store, ledger_dir, floor=floor)
            client = InProcessClient(server)
            statuses = []
            for _ in range(5):
                status, _ = await client.publish(
                    user="u", n=8, alpha="1/2", true_result=3
                )
                statuses.append(status)
            await server.stop()
            return statuses, server.ledgers

        statuses, _ = asyncio.run(second_life())
        # two charges survived the first life (the second was journaled
        # before the crash), so exactly two more fit before the floor:
        assert statuses == [200, 200, 429, 429, 429]
        recovered = DurableLedger(ledger_dir)
        assert recovered.view("u").cumulative_alpha == floor
        recovered.close()

    def test_idem_retry_across_crash_never_double_charges(
        self, store, tmp_path
    ):
        ledger_dir = tmp_path / "ledger"
        faults = FaultInjector().crash_at("server.before-response")

        async def first_life():
            server = make_server(store, ledger_dir, faults=faults)
            client = InProcessClient(server)
            with pytest.raises(InjectedCrash):
                await client.publish(
                    user="u", n=8, alpha="1/2", true_result=3,
                    idem="the-retry",
                )

        asyncio.run(first_life())

        async def second_life():
            server = make_server(store, ledger_dir)
            client = InProcessClient(server)
            status, _ = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3,
                idem="the-retry",
            )
            assert status == 200
            budget = server.ledgers.view("u")
            await server.stop()
            return budget

        budget = asyncio.run(second_life())
        # charged exactly once across the crash + retry:
        assert budget.cumulative_alpha == HALF
        assert budget.releases == 1


_CHILD_SERVER = """
import asyncio, sys
from fractions import Fraction
from repro.serving import MechanismServer

store, ledger_dir, port_file = sys.argv[1], sys.argv[2], sys.argv[3]

async def main():
    server = MechanismServer(
        store, floor=Fraction(1, 2) ** 8, ledger_dir=ledger_dir,
        ledger_fsync="group", batch_window=0.001, audit_rate=0.0, seed=11,
    )
    server.load_store()
    await server.start()
    with open(port_file, "w") as handle:
        handle.write(str(server.port))
    await server.serve_forever(install_signal_handlers=True)

asyncio.run(main())
"""


class TestProcessKillAndRecover:
    """A real ``SIGKILL`` against a real server process mid-traffic."""

    def test_sigkill_mid_traffic_loses_no_acked_charge(
        self, store, tmp_path
    ):
        ledger_dir = tmp_path / "ledger"
        port_file = tmp_path / "port"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(p) for p in sys.path if p]
        )
        child = subprocess.Popen(
            [
                sys.executable, "-c", _CHILD_SERVER,
                str(store.path), str(ledger_dir), str(port_file),
            ],
            env=env,
        )
        try:
            deadline = time.monotonic() + 30
            while not port_file.exists() or not port_file.read_text():
                assert child.poll() is None, "server child died on start"
                assert time.monotonic() < deadline, "server never came up"
                time.sleep(0.05)
            port = int(port_file.read_text())

            async def drive():
                client = HTTPServingClient(
                    "127.0.0.1", port,
                    timeout=2.0, retries=0, seed=3,
                )
                acked = 0
                for index in range(200):
                    if index == 5:
                        os.kill(child.pid, signal.SIGKILL)
                    try:
                        status, _ = await client.publish(
                            user="victim", n=8, alpha="1/2",
                            true_result=3, idem=f"kill-{index}",
                        )
                    except Exception:
                        break  # the process is gone
                    if status == 200:
                        acked += 1
                await client.close()
                return acked

            acked = asyncio.run(drive())
            child.wait(timeout=10)

            report = verify_ledger_dir(ledger_dir)
            assert report["ok"], report["failures"]
            recovered = DurableLedger(ledger_dir, HALF ** 8)
            budget = recovered.view("victim")
            cum = (
                Fraction(1) if budget is None else budget.cumulative_alpha
            )
            # no admitted charge lost: every 200 the client saw is in
            # the recovered ledger (group commit syncs before release)
            assert cum <= HALF ** acked
            # and nothing below the floor was ever admitted:
            assert cum >= HALF ** 8
            recovered.close()
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=10)

    def test_sigterm_drains_and_budget_survives(self, store, tmp_path):
        ledger_dir = tmp_path / "ledger"
        port_file = tmp_path / "port"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(p) for p in sys.path if p]
        )
        child = subprocess.Popen(
            [
                sys.executable, "-c", _CHILD_SERVER,
                str(store.path), str(ledger_dir), str(port_file),
            ],
            env=env,
        )
        try:
            deadline = time.monotonic() + 30
            while not port_file.exists() or not port_file.read_text():
                assert child.poll() is None, "server child died on start"
                assert time.monotonic() < deadline, "server never came up"
                time.sleep(0.05)
            port = int(port_file.read_text())

            async def drive():
                client = HTTPServingClient(
                    "127.0.0.1", port, timeout=2.0, retries=2, seed=3
                )
                status, _ = await client.publish(
                    user="u", n=8, alpha="1/2", true_result=3
                )
                assert status == 200
                await client.close()

            asyncio.run(drive())
            child.send_signal(signal.SIGTERM)
            assert child.wait(timeout=15) == 0  # graceful exit
            recovered = DurableLedger(ledger_dir)
            assert recovered.view("u").cumulative_alpha == HALF
            recovered.close()
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=10)
