"""Tests for the online serving auditor."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.geometric import GeometricMechanism
from repro.exceptions import ValidationError
from repro.release.artifacts import ArtifactSpec, compile_artifact
from repro.serving.audit import (
    MIN_EXPECTED,
    OnlineAuditor,
    expected_response_matrix,
)


@pytest.fixture(scope="module")
def geo_artifact():
    return compile_artifact("geometric", 6, Fraction(1, 2))


@pytest.fixture(scope="module")
def optimal_artifact():
    return compile_artifact("optimal", 4, Fraction(1, 2), loss="absolute")


class TestExpectedResponseMatrix:
    def test_matches_the_mechanism_kernel(self):
        spec = ArtifactSpec("geometric", 5, Fraction(1, 3))
        derived = expected_response_matrix(spec)
        kernel = np.array(
            GeometricMechanism(5, Fraction(1, 3)).matrix, dtype=float
        )
        assert np.allclose(derived, kernel, atol=1e-12)

    def test_rows_sum_to_one(self):
        derived = expected_response_matrix(
            ArtifactSpec("geometric", 8, Fraction(2, 3))
        )
        assert np.allclose(derived.sum(axis=1), 1.0)

    def test_rejects_non_geometric_specs(self):
        spec = ArtifactSpec("optimal", 4, Fraction(1, 2), loss="absolute")
        with pytest.raises(ValidationError):
            expected_response_matrix(spec)

    def test_read_only(self):
        derived = expected_response_matrix(
            ArtifactSpec("geometric", 3, Fraction(1, 2))
        )
        with pytest.raises(ValueError):
            derived[0, 0] = 0.5


class TestValidation:
    def test_rate_bounds(self):
        with pytest.raises(ValidationError):
            OnlineAuditor(rate=1.5)
        with pytest.raises(ValidationError):
            OnlineAuditor(rate=-0.1)

    def test_min_samples(self):
        with pytest.raises(ValidationError):
            OnlineAuditor(min_samples=0)

    def test_sigmas(self):
        with pytest.raises(ValidationError):
            OnlineAuditor(sigmas=0)


def feed(auditor, artifact, index, draws, rng, tamper_alpha=None):
    """Serve ``draws`` honest (or tampered) responses into the auditor."""
    n = artifact.spec.n
    if tamper_alpha is None:
        sampler = artifact.sampler
    else:
        sampler = compile_artifact("geometric", n, tamper_alpha).sampler
    rows = rng.integers(0, n + 1, size=draws)
    values = np.array([sampler.sample_one(int(r), rng) for r in rows])
    auditor.observe(np.full(draws, index), rows, values)


class TestHonestTraffic:
    def test_honest_geometric_not_flagged(self, geo_artifact, rng):
        auditor = OnlineAuditor(rate=1.0, min_samples=1000, rng=1)
        auditor.register(0, geo_artifact)
        feed(auditor, geo_artifact, 0, 6000, rng)
        (finding,) = auditor.sweep()
        assert finding.sufficient
        assert not finding.flagged
        assert finding.statistic <= finding.limit
        assert auditor.flagged() == ()

    def test_honest_optimal_not_flagged(self, optimal_artifact, rng):
        auditor = OnlineAuditor(rate=1.0, min_samples=1000, rng=1)
        auditor.register(0, optimal_artifact)
        feed(auditor, optimal_artifact, 0, 6000, rng)
        (finding,) = auditor.sweep()
        assert finding.kind == "optimal"
        assert not finding.flagged


class TestTamperedTraffic:
    def test_tampered_kernel_is_flagged(self, geo_artifact, rng):
        # The deployment claims alpha=1/2 but actually serves alpha=7/8
        # noise (a much weaker privacy level than advertised).
        auditor = OnlineAuditor(rate=1.0, min_samples=1000, rng=1)
        auditor.register(0, geo_artifact)
        feed(
            auditor, geo_artifact, 0, 6000, rng,
            tamper_alpha=Fraction(7, 8),
        )
        (finding,) = auditor.sweep()
        assert finding.sufficient
        assert finding.flagged
        assert finding.statistic > finding.limit
        assert auditor.flagged() == (finding,)

    def test_under_sampled_tamper_is_insufficient_not_clean(
        self, geo_artifact, rng
    ):
        auditor = OnlineAuditor(rate=1.0, min_samples=10_000, rng=1)
        auditor.register(0, geo_artifact)
        feed(
            auditor, geo_artifact, 0, 500, rng, tamper_alpha=Fraction(7, 8)
        )
        (finding,) = auditor.sweep()
        assert not finding.sufficient
        assert not finding.flagged


class TestSampling:
    def test_rate_zero_records_nothing(self, geo_artifact, rng):
        auditor = OnlineAuditor(rate=0.0, rng=1)
        auditor.register(0, geo_artifact)
        recorded = auditor.observe(
            np.zeros(100, dtype=np.int64),
            np.zeros(100, dtype=np.int64),
            np.zeros(100, dtype=np.int64),
        )
        assert recorded == 0
        assert auditor.samples == 0

    def test_partial_rate_records_a_slice(self, geo_artifact):
        auditor = OnlineAuditor(rate=0.2, rng=3)
        auditor.register(0, geo_artifact)
        recorded = auditor.observe(
            np.zeros(5000, dtype=np.int64),
            np.zeros(5000, dtype=np.int64),
            np.zeros(5000, dtype=np.int64),
        )
        # ~20% +- sampling noise, seeded so this is stable.
        assert 800 < recorded < 1200
        assert auditor.samples == recorded

    def test_unregistered_tables_are_ignored(self, geo_artifact):
        auditor = OnlineAuditor(rate=1.0, rng=1)
        auditor.register(0, geo_artifact)
        recorded = auditor.observe(
            np.array([0, 5, 0]), np.array([1, 1, 2]), np.array([0, 0, 1])
        )
        assert recorded == 2

    def test_min_expected_is_the_documented_guard(self):
        assert MIN_EXPECTED == 5.0
