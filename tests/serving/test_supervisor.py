"""The supervised serving fleet: real worker processes, one listener,
one WAL — supervised restarts, draining, rolling reloads, and the full
chaos acceptance scenario.

Fast lifecycle checks run unmarked; anything that kills processes under
live traffic is ``@pytest.mark.chaos`` (still part of the default run,
grouped for `pytest -m chaos`).
"""

import asyncio
import signal
import time
from fractions import Fraction

import numpy as np
import pytest

from repro.exceptions import ReproError, ValidationError
from repro.release.artifacts import ArtifactSpec, ArtifactStore
from repro.release.durable_ledger import DurableLedger, verify_ledger_dir
from repro.serving import (
    HTTPServingClient,
    OnlineAuditor,
    ServingSupervisor,
)

HALF = Fraction(1, 2)


def make_fleet(tmp_path, *, workers=2, floor=HALF ** 20, config=None,
               **kwargs):
    store = ArtifactStore(tmp_path / "artifacts")
    store.get_or_compile(ArtifactSpec("geometric", 8, HALF))
    DurableLedger(tmp_path / "ledger", floor).close()  # settle meta
    worker_config = {
        "store": str(tmp_path / "artifacts"),
        "floor": str(floor),
        "ledger_dir": str(tmp_path / "ledger"),
        "audit_rate": 0.0,
        "seed": 5,
        "queue_depth": 64,
        "telemetry": False,
    }
    worker_config.update(config or {})
    kwargs.setdefault("heartbeat_interval", 0.1)
    kwargs.setdefault("backoff_base", 0.05)
    return ServingSupervisor(worker_config, workers=workers, **kwargs)


async def drive(port, count, *, n=8, alpha="1/2", users=4, retries=4,
                **extra):
    """Publish ``count`` statistics through the shared listener."""
    client = HTTPServingClient(
        "127.0.0.1", port, retries=retries, backoff=0.05, timeout=5.0
    )
    acked = {}
    bodies = []
    try:
        for i in range(count):
            user = f"u{i % users}"
            try:
                status, body = await client.publish(
                    user=user, n=n, alpha=alpha, true_result=3, **extra
                )
            except Exception:  # noqa: BLE001 - a kill mid-flight
                continue
            if status == 200:
                acked[user] = acked.get(user, 0) + 1
                bodies.append(body)
    finally:
        await client.close()
    return acked, bodies


class TestValidation:
    def test_needs_a_store_and_positive_workers(self):
        with pytest.raises(ValidationError, match="store"):
            ServingSupervisor({})
        with pytest.raises(ValidationError, match="workers"):
            ServingSupervisor({"store": "x"}, workers=0)

    def test_port_requires_start(self, tmp_path):
        fleet = make_fleet(tmp_path)
        with pytest.raises(ReproError, match="not started"):
            fleet.port

    def test_kill_needs_a_live_worker(self, tmp_path):
        fleet = make_fleet(tmp_path)
        fleet._slots[0].proc = None
        with pytest.raises(ReproError, match="no live worker"):
            fleet.kill_worker(0)


class TestFleetLifecycle:
    def test_start_serve_drain(self, tmp_path):
        fleet = make_fleet(tmp_path, workers=2)
        fleet.start()
        try:
            assert fleet.wait_ready(30), fleet.status()
            # Liveness and readiness through the shared listener.
            assert fleet.probe("/healthz")[0] == 200
            status, ready = fleet.probe("/readyz")
            assert status == 200 and ready["ready"]
            assert ready["worker"] in ("w0", "w1")
            acked, _ = asyncio.run(drive(fleet.port, 12))
            assert sum(acked.values()) == 12
        finally:
            fleet.lame_duck(drain_deadline=10.0)
        state = fleet.status()
        assert not any(slot["alive"] for slot in state["slots"])
        # SIGTERM drained them: clean exits, no SIGKILL escalation.
        assert all(
            slot["exits"] and slot["exits"][-1] == 0
            for slot in state["slots"]
        )
        # Every acked charge is in the shared WAL.
        ledger = DurableLedger(tmp_path / "ledger")
        assert ledger.view("u0").releases == 3
        assert ledger.users() == 4
        ledger.close()
        report = verify_ledger_dir(tmp_path / "ledger")
        assert report["ok"], report["failures"]

    def test_status_snapshot_shape(self, tmp_path):
        fleet = make_fleet(tmp_path, workers=1)
        fleet.start()
        try:
            assert fleet.wait_ready(30)
            state = fleet.status()
            assert state["workers"] == 1
            assert state["port"] == fleet.port
            slot = state["slots"][0]
            assert slot["alive"] and slot["ready"]
            assert slot["beats"] >= 1
            assert state["stats"]["spawns"] == 1
        finally:
            fleet.lame_duck(drain_deadline=10.0)


@pytest.mark.chaos
class TestFleetChaos:
    def wait_for(self, fleet, predicate, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            fleet.poll()
            if predicate(fleet.status()):
                return True
            time.sleep(0.05)
        return False

    def test_sigkill_is_restarted_with_backoff(self, tmp_path):
        fleet = make_fleet(tmp_path, workers=2, backoff_base=0.05,
                           stability_reset=3600.0)
        fleet.start()
        try:
            assert fleet.wait_ready(30)
            first_pid = fleet.status()["slots"][0]["pid"]
            fleet.kill_worker(0, signal.SIGKILL)
            assert self.wait_for(
                fleet,
                lambda s: s["stats"]["restarts"] >= 1
                and s["slots"][0]["alive"],
            )
            assert fleet.wait_ready(30)
            state = fleet.status()
            assert state["slots"][0]["pid"] != first_pid
            assert state["slots"][0]["exits"][-1] == -signal.SIGKILL
            # The failure count feeds the capped exponential backoff.
            assert state["slots"][0]["failures"] == 1
            # The surviving worker never blinked.
            assert state["slots"][1]["spawns"] == 1
            # And the fleet still serves.
            acked, _ = asyncio.run(drive(fleet.port, 8))
            assert sum(acked.values()) == 8
        finally:
            fleet.lame_duck(drain_deadline=10.0)

    def test_listener_drop_is_detected_and_replaced(self, tmp_path):
        fleet = make_fleet(
            tmp_path, workers=2,
            not_ready_timeout=0.4, heartbeat_interval=0.1,
            slot_overrides={1: {"faults": {"listener_drop_after_s": 0.8}}},
        )
        fleet.start()
        try:
            assert fleet.wait_ready(30)
            # The dropped listener makes slot 1 beat not-ready; the
            # supervisor drains and replaces it. The replacement
            # inherits the same override, so it will drop again —
            # assert the first replacement cycle only.
            assert self.wait_for(
                fleet,
                lambda s: s["stats"]["not_ready_restarts"] >= 1
                and s["stats"]["restarts"] >= 1,
            )
        finally:
            fleet.lame_duck(drain_deadline=10.0)

    def test_rolling_reload_replaces_every_worker(self, tmp_path):
        fleet = make_fleet(tmp_path, workers=2)
        fleet.start()
        try:
            assert fleet.wait_ready(30)
            pids = [s["pid"] for s in fleet.status()["slots"]]
            assert fleet.rolling_reload(ready_timeout=30.0)
            state = fleet.status()
            assert [s["pid"] for s in state["slots"]] != pids
            assert all(s["alive"] and s["ready"] for s in state["slots"])
            assert state["stats"]["rolling_reloads"] == 1
            acked, _ = asyncio.run(drive(fleet.port, 8))
            assert sum(acked.values()) == 8
        finally:
            fleet.lame_duck(drain_deadline=10.0)


@pytest.mark.chaos
class TestFleetAcceptance:
    """The PR's acceptance scenario: 4 workers under live HTTP traffic,
    two SIGKILLed mid-traffic, one riding an injected fsync storm, and
    a quarantined bespoke artifact serving certified-degraded geometric
    responses — with zero lost acked charges, no user past the floor,
    and full capacity restored."""

    def test_fleet_chaos_end_to_end(self, tmp_path):
        import json as json_mod

        from repro.release.artifacts import _payload_digest

        store = ArtifactStore(tmp_path / "artifacts")
        store.get_or_compile(ArtifactSpec("geometric", 8, HALF))
        geometric4 = store.get_or_compile(ArtifactSpec("geometric", 4, HALF))
        optimal = ArtifactSpec("optimal", 4, HALF, loss="absolute")
        store.get_or_compile(optimal)
        # Tamper the bespoke artifact so every worker quarantines it.
        entry = store._entry_path(optimal.key())
        payload = json_mod.loads(entry.read_text())
        kernel = payload["kernel"]
        kernel[0][0], kernel[0][1] = kernel[0][1], kernel[0][0]
        payload["digest"] = _payload_digest(payload)
        entry.write_text(json_mod.dumps(payload))

        floor = HALF ** 60
        DurableLedger(tmp_path / "ledger", floor).close()
        fleet = ServingSupervisor(
            {
                "store": str(tmp_path / "artifacts"),
                "floor": str(floor),
                "ledger_dir": str(tmp_path / "ledger"),
                "ledger_fsync": "always",
                "audit_rate": 0.0,
                "seed": 5,
                "queue_depth": 64,
                "degraded": "geometric",
                "wal_failure_policy": "reject-new-charges",
                "breaker_cooldown": 0.2,
                "telemetry": False,
            },
            workers=4,
            heartbeat_interval=0.1,
            backoff_base=0.05,
            # Worker 0's WAL fsyncs fail 3 times from the start: it must
            # trip its breaker loudly, then recover via probes.
            slot_overrides={
                0: {"faults": {"fsync_storm": {"after": 0, "times": 3}}}
            },
        )
        fleet.start()
        try:
            assert fleet.wait_ready(60), fleet.status()

            async def scenario():
                killed = []

                async def supervise():
                    while True:
                        fleet.poll()
                        await asyncio.sleep(0.03)

                task = asyncio.create_task(supervise())
                try:
                    client = HTTPServingClient(
                        "127.0.0.1", fleet.port, retries=6,
                        backoff=0.05, timeout=5.0,
                    )
                    acked = {}
                    degraded = []
                    lost = 0
                    for i in range(160):
                        user = f"u{i % 8}"
                        # Interleave healthy traffic with requests for
                        # the quarantined bespoke deployment.
                        if i % 2:
                            kwargs = dict(
                                n=4, alpha="1/2", kind="optimal",
                                loss="absolute", true_result=i % 5,
                            )
                        else:
                            kwargs = dict(n=8, alpha="1/2", true_result=3)
                        try:
                            status, body = await client.publish(
                                user=user, **kwargs
                            )
                        except Exception:  # noqa: BLE001 - kill window
                            lost += 1
                            await client.close()
                            continue
                        if status == 200:
                            acked[user] = acked.get(user, 0) + 1
                            if body.get("degraded") == "geometric":
                                degraded.append(
                                    (kwargs["true_result"], body["value"])
                                )
                        if i == 50:
                            killed.append(fleet.kill_worker(1))
                        if i == 70:
                            killed.append(fleet.kill_worker(2))
                    await client.close()
                    return acked, degraded, lost, killed
                finally:
                    task.cancel()
                    with pytest.raises(asyncio.CancelledError):
                        await task

            acked, degraded, lost, killed = asyncio.run(scenario())
            assert len(killed) == 2
            # Supervisor restores full capacity after both kills.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                fleet.poll()
                state = fleet.status()
                if (
                    state["stats"]["restarts"] >= 2
                    and all(s["alive"] for s in state["slots"])
                ):
                    break
                time.sleep(0.05)
            assert fleet.wait_ready(60), fleet.status()
            state = fleet.status()
            assert state["stats"]["restarts"] >= 2

            # Certified degradation actually served traffic, marked.
            assert len(degraded) >= 30
        finally:
            fleet.lame_duck(drain_deadline=15.0)

        # -- durability invariants over the shared WAL ------------------
        report = verify_ledger_dir(tmp_path / "ledger")
        assert report["ok"], report["failures"]
        ledger = DurableLedger(tmp_path / "ledger")
        for user, count in acked.items():
            budget = ledger.view(user)
            assert budget is not None
            cum = budget.cumulative_alpha
            # No user past the floor; zero lost acked charges: the
            # journal holds at least one charge per acked response
            # (kill-window charges may add more — over-protection).
            assert cum >= floor
            assert cum <= HALF ** count
        ledger.close()

        # -- degraded responses obey the *geometric* law ----------------
        auditor = OnlineAuditor(rate=1.0, min_samples=30, rng=7)
        auditor.register(0, geometric4)
        rows = np.array([row for row, _ in degraded], dtype=np.int64)
        values = np.array([value for _, value in degraded], dtype=np.int64)
        auditor.observe(np.zeros(len(rows), dtype=np.int64), rows, values)
        findings = auditor.sweep()
        assert findings and findings[0].sufficient
        assert not findings[0].flagged
