"""Client/server resilience: timeouts, retries, idempotency keys,
graceful drain, signal shutdown, and artifact quarantine."""

import asyncio
import json
import os
import signal
from fractions import Fraction

import pytest

from repro.release.artifacts import ArtifactSpec, ArtifactStore
from repro.serving import (
    FlakyEndpoint,
    HTTPServingClient,
    InProcessClient,
    MechanismServer,
)


@pytest.fixture()
def store(tmp_path):
    store = ArtifactStore(tmp_path / "artifacts")
    store.get_or_compile(ArtifactSpec("geometric", 8, Fraction(1, 2)))
    return store


def make_server(store, **kwargs):
    kwargs.setdefault("batch_window", 0.001)
    kwargs.setdefault("audit_rate", 0.0)
    kwargs.setdefault("seed", 11)
    server = MechanismServer(store, **kwargs)
    server.load_store()
    return server


def run(coro):
    return asyncio.run(coro)


class TestClientTimeout:
    def test_stalled_server_times_out_instead_of_hanging(self, store):
        async def main():
            server = make_server(store)
            await server.start()
            shim = FlakyEndpoint("127.0.0.1", server.port, stall=10)
            await shim.start()
            client = HTTPServingClient(
                "127.0.0.1", shim.port,
                timeout=0.2, retries=0, seed=1,
            )
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(
                    client.publish(
                        user="u", n=8, alpha="1/2", true_result=3
                    ),
                    5.0,  # the outer bound proves the inner timeout fired
                )
            await client.close()
            await shim.stop()
            await server.stop()

        run(main())

    def test_timeout_none_preserves_untimed_behavior(self, store):
        async def main():
            server = make_server(store)
            await server.start()
            client = HTTPServingClient(
                "127.0.0.1", server.port, timeout=None, retries=0
            )
            status, _ = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3
            )
            assert status == 200
            await client.close()
            await server.stop()

        run(main())


class TestClientRetry:
    def test_dropped_connections_are_retried(self, store):
        async def main():
            server = make_server(store)
            await server.start()
            shim = FlakyEndpoint("127.0.0.1", server.port, drop=2)
            await shim.start()
            client = HTTPServingClient(
                "127.0.0.1", shim.port,
                timeout=2.0, retries=3, backoff=0.01, seed=5,
            )
            status, response = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3
            )
            assert status == 200
            assert shim.connections == 3  # two drops + the success
            await client.close()
            await shim.stop()
            await server.stop()

        run(main())

    def test_retries_exhausted_raises_last_error(self, store):
        async def main():
            server = make_server(store)
            await server.start()
            shim = FlakyEndpoint("127.0.0.1", server.port, drop=99)
            await shim.start()
            client = HTTPServingClient(
                "127.0.0.1", shim.port,
                timeout=1.0, retries=2, backoff=0.01, seed=5,
            )
            with pytest.raises(Exception):
                await client.request("GET", "/healthz")
            assert shim.connections == 3  # 1 + 2 retries
            await client.close()
            await shim.stop()
            await server.stop()

        run(main())

    def test_backoff_is_bounded_exponential_with_jitter(self):
        client = HTTPServingClient(
            "127.0.0.1", 1,
            backoff=0.1, backoff_max=0.5, seed=42,
        )
        twin = HTTPServingClient(
            "127.0.0.1", 1,
            backoff=0.1, backoff_max=0.5, seed=42,
        )
        delays = [client._backoff_delay(a) for a in range(6)]
        # deterministic under a seed:
        assert delays == [twin._backoff_delay(a) for a in range(6)]
        # jittered within [0.5, 1.0) of the exponential envelope:
        for attempt, delay in enumerate(delays):
            envelope = min(0.1 * (2 ** attempt), 0.5)
            assert 0.5 * envelope <= delay < envelope

    def test_swallowed_response_plus_retry_charges_once(self, store):
        """The scenario idempotency keys exist for: the server charged
        and answered, the response evaporated, the client retried."""

        async def main():
            server = make_server(store, floor=Fraction(1, 4))
            await server.start()
            shim = FlakyEndpoint("127.0.0.1", server.port, swallow=1)
            await shim.start()
            client = HTTPServingClient(
                "127.0.0.1", shim.port,
                timeout=0.3, retries=2, backoff=0.01, seed=9,
            )
            status, response = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3
            )
            assert status == 200
            # one request attempt was swallowed after reaching the
            # server, so without the key the budget would read 1/4:
            assert server.metrics["replayed"] == 1
            budget = server.ledgers.view("u")
            assert budget.cumulative_alpha == Fraction(1, 2)
            assert budget.releases == 1
            await client.close()
            await shim.stop()
            await server.stop()

        run(main())

    def test_explicit_idem_key_overrides_generated(self, store):
        async def main():
            server = make_server(store)
            await server.start()
            client = HTTPServingClient("127.0.0.1", server.port, seed=2)
            first = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3, idem="fixed"
            )
            second = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3, idem="fixed"
            )
            assert first == second  # replayed verbatim
            assert server.ledgers.view("u").releases == 1
            await client.close()
            await server.stop()

        run(main())


class TestGracefulDrain:
    def test_stop_waits_for_inflight_then_closes_keepalive(self, store):
        async def main():
            server = make_server(store, drain_deadline=2.0)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            body = json.dumps(
                {"user": "u", "n": 8, "alpha": "1/2", "true_result": 3}
            ).encode()
            writer.write(
                b"POST /publish HTTP/1.1\r\n"
                b"Content-Length: %d\r\n"
                b"Connection: keep-alive\r\n\r\n" % len(body) + body
            )
            await writer.drain()
            stop = asyncio.create_task(server.stop())
            status_line = await asyncio.wait_for(reader.readline(), 2.0)
            assert b"200" in status_line
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), 2.0
            )
            # a draining server refuses to keep the connection alive:
            assert b"Connection: close" in head
            await asyncio.wait_for(stop, 5.0)
            assert not server._connections
            writer.close()

        run(main())

    def test_stop_is_idempotent_and_syncs_ledger(self, store, tmp_path):
        async def main():
            server = make_server(
                store, floor=Fraction(1, 16),
                ledger_dir=tmp_path / "ledger",
            )
            client = InProcessClient(server)
            status, _ = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3
            )
            assert status == 200
            await server.stop()
            await server.stop()  # second stop must be a no-op
            # budgets made it to disk:
            from repro.release.durable_ledger import verify_ledger_dir

            report = verify_ledger_dir(tmp_path / "ledger")
            assert report["ok"]
            assert report["users"] == 1

        run(main())

    def test_idle_keepalive_connection_is_cancelled_at_deadline(
        self, store
    ):
        async def main():
            server = make_server(store, drain_deadline=0.1)
            await server.start()
            # park an idle keep-alive connection (no request in flight)
            _reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            await asyncio.sleep(0.02)
            assert len(server._connections) == 1
            await asyncio.wait_for(server.stop(), 3.0)
            assert not server._connections
            writer.close()

        run(main())

    def test_sigterm_triggers_graceful_drain(self, store):
        async def main():
            server = make_server(store)
            await server.start()
            serve = asyncio.create_task(
                server.serve_forever(install_signal_handlers=True)
            )
            await asyncio.sleep(0.05)
            os.kill(os.getpid(), signal.SIGTERM)
            await asyncio.wait_for(serve, 5.0)
            assert server._stopped

        run(main())

    def test_request_shutdown_unblocks_serve_forever(self, store):
        async def main():
            server = make_server(store)
            await server.start()
            serve = asyncio.create_task(server.serve_forever())
            await asyncio.sleep(0.02)
            server.request_shutdown()
            await asyncio.wait_for(serve, 5.0)
            assert server._stopped

        run(main())


class TestQuarantine:
    def test_bad_artifact_quarantined_not_fatal(self, store, tmp_path):
        # Tamper one stored entry on disk — with a recomputed digest, so
        # it structurally *loads* but fails load-time verification (the
        # digest-mismatch case is already skipped as damaged).
        from repro.release.artifacts import _payload_digest

        spec = ArtifactSpec("geometric", 4, Fraction(1, 4))
        store.get_or_compile(spec)
        entry = store._entry_path(spec.key())
        payload = json.loads(entry.read_text())
        kernel = payload["kernel"]
        kernel[0][0], kernel[0][1] = kernel[0][1], kernel[0][0]
        payload["digest"] = _payload_digest(payload)
        entry.write_text(json.dumps(payload))

        async def main():
            server = MechanismServer(
                store, batch_window=0.001, audit_rate=0.0, seed=11
            )
            loaded = server.load_store()
            assert loaded == 1  # the healthy artifact
            assert len(server.quarantined) == 1
            client = InProcessClient(server)
            # the quarantined deployment 503s with the reason:
            status, response = await client.publish(
                user="u", n=4, alpha="1/4", true_result=1
            )
            assert status == 503
            assert "quarantined" in response["error"]
            assert server.metrics["quarantined_requests"] == 1
            # the healthy deployment keeps serving:
            status, _ = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3
            )
            assert status == 200
            # and /artifacts lists the quarantine:
            status, listing = await client.get("/artifacts")
            assert status == 200
            assert len(listing["quarantined"]) == 1
            assert listing["quarantined"][0]["n"] == 4
            await server.stop()

        run(main())
