"""End-to-end observability tests: traces, /metrics, burn, batcher stats."""

import asyncio
from fractions import Fraction

import pytest

from repro.obs import MetricsRegistry, Telemetry
from repro.release.artifacts import ArtifactSpec, ArtifactStore
from repro.serving import (
    HTTPServingClient,
    InProcessClient,
    MechanismServer,
    MicroBatcher,
)
from tests.obs.test_metrics import assert_valid_exposition


@pytest.fixture()
def store(tmp_path):
    store = ArtifactStore(tmp_path / "artifacts")
    store.get_or_compile(ArtifactSpec("geometric", 8, Fraction(1, 2)))
    store.get_or_compile(ArtifactSpec("geometric", 4, Fraction(1, 4)))
    return store


def make_server(store, **kwargs):
    kwargs.setdefault("batch_window", 0.001)
    kwargs.setdefault("audit_rate", 0.0)
    kwargs.setdefault("seed", 11)
    server = MechanismServer(store, **kwargs)
    server.load_store()
    return server


def run(coro):
    return asyncio.run(coro)


def publish_payload(user="gov", **extra):
    payload = {"user": user, "n": 8, "alpha": "1/2", "true_result": 3}
    payload.update(extra)
    return payload


class TestTracedPublish:
    def test_one_trace_covers_charge_to_sample(self, store, tmp_path):
        """The acceptance criterion: a traced POST /publish yields one
        trace ID whose spans cover charge → fsync → flush → sample."""
        server = make_server(
            store,
            ledger_dir=tmp_path / "ledger",
            ledger_fsync="group",
            trace_rate=1.0,
            trace_seed=3,
        )
        client = InProcessClient(server)

        async def go():
            result = await client.publish(**publish_payload())
            await server.stop()
            return result

        status, body = run(go())
        assert status == 200
        trace_id = body["trace"]
        spans = server.telemetry.tracer.recent(100, trace=trace_id)
        names = {span["name"] for span in spans}
        assert {
            "server.publish",
            "ledger.charge",
            "wal.append",
            "wal.fsync",
            "batch.flush",
            "sampler.gather",
        } <= names
        # Every span of the request shares the one trace ID, and the
        # root publish span has no parent.
        assert all(span["trace"] == trace_id for span in spans)
        roots = [s for s in spans if s["parent"] is None]
        assert [s["name"] for s in roots] == ["server.publish"]

    def test_batch_spans_broadcast_to_all_traced_requests(self, store):
        server = make_server(store, trace_rate=1.0, batch_window=0.005)
        client = InProcessClient(server)

        async def go():
            results = await asyncio.gather(*[
                client.publish(**publish_payload(user=f"u{i}"))
                for i in range(4)
            ])
            await server.stop()
            return results

        results = run(go())
        traces = {body["trace"] for _, body in results}
        assert len(traces) == 4
        flushes = server.telemetry.tracer.recent(100, name="batch.flush")
        assert {span["trace"] for span in flushes} == traces
        # One fused flush: a single shared span id across the broadcast.
        assert len({span["span"] for span in flushes}) == 1

    def test_rate_zero_adds_no_trace_key_or_spans(self, store):
        server = make_server(store)  # telemetry on, tracing off
        client = InProcessClient(server)

        async def go():
            result = await client.publish(**publish_payload())
            await server.stop()
            return result

        status, body = run(go())
        assert status == 200
        assert "trace" not in body
        assert server.telemetry.tracer.emitted == 0

    def test_trace_dir_written_on_stop(self, store, tmp_path):
        server = make_server(
            store, trace_rate=1.0, trace_dir=tmp_path / "traces"
        )
        client = InProcessClient(server)

        async def go():
            await client.publish(**publish_payload())
            await server.stop()

        run(go())
        log = tmp_path / "traces" / "trace.jsonl"
        assert log.is_file()
        assert "server.publish" in log.read_text()


class TestMetricsRoute:
    def test_json_stays_default(self, store):
        server = make_server(store)

        async def go():
            result = await server.handle_request("GET", "/metrics")
            await server.stop()
            return result

        status, body = run(go())
        assert status == 200
        assert "metrics" in body and "__raw__" not in body

    def test_prometheus_by_query_param_and_accept_header(self, store):
        server = make_server(store)
        client = InProcessClient(server)

        async def go():
            await client.publish(**publish_payload())
            await client.publish(**publish_payload(alpha="zebra"))
            by_param = await server.handle_request(
                "GET", "/metrics?format=prometheus"
            )
            by_header = await server.handle_request(
                "GET", "/metrics", headers={"accept": "text/plain"}
            )
            await server.stop()
            return by_param, by_header

        by_param, by_header = run(go())
        assert by_param[0] == 200 and by_header[0] == 200
        text = by_param[1]["__raw__"]
        assert by_param[1]["__content_type__"].startswith("text/plain")
        families = assert_valid_exposition(text)
        # Requests counted by route and status.
        requests = {
            (labels["route"], labels["status"]): value
            for name, labels, value in families["repro_requests_total"][
                "samples"
            ]
        }
        assert requests[("publish", "200")] == 1
        assert requests[("publish", "400")] == 1
        # Per-deployment latency histogram with at least one observation.
        latency = families["repro_publish_latency_seconds"]
        assert latency["type"] == "histogram"
        counts = [
            value
            for name, labels, value in latency["samples"]
            if name.endswith("_count")
        ]
        assert sum(counts) == 1

    def test_solver_layer_families_merged_into_scrape(self, store):
        # The store fixture compiled artifacts through the default
        # registry's artifact-store counters; the server scrape merges
        # that registry in.
        server = make_server(store)

        async def go():
            result = await server.handle_request(
                "GET", "/metrics?format=prometheus"
            )
            await server.stop()
            return result

        status, body = run(go())
        assert status == 200
        assert "repro_artifact_store_total" in body["__raw__"]

    def test_telemetry_off_serves_json_but_not_prometheus(self, store):
        server = make_server(store, telemetry=False)
        client = InProcessClient(server)

        async def go():
            publish = await client.publish(**publish_payload())
            json_metrics = await server.handle_request("GET", "/metrics")
            prom = await server.handle_request(
                "GET", "/metrics?format=prometheus"
            )
            traces = await server.handle_request("GET", "/trace/recent")
            await server.stop()
            return publish, json_metrics, prom, traces

        publish, json_metrics, prom, traces = run(go())
        assert publish[0] == 200 and "trace" not in publish[1]
        assert json_metrics[0] == 200
        assert prom[0] == 404
        assert traces[0] == 404
        assert server.telemetry is None

    def test_http_scrape_returns_prometheus_text(self, store):
        server = make_server(store)

        async def go():
            await server.start(port=0)
            client = HTTPServingClient("127.0.0.1", server.port)
            try:
                await client.publish(**publish_payload())
                status, body = await client.get(
                    "/metrics?format=prometheus"
                )
            finally:
                await client.close()
                await server.stop()
            return status, body

        status, body = run(go())
        assert status == 200
        assert_valid_exposition(body["__raw__"])


class TestTraceAndBurnRoutes:
    def test_trace_recent_filters(self, store):
        server = make_server(store, trace_rate=1.0)
        client = InProcessClient(server)

        async def go():
            _, body = await client.publish(**publish_payload())
            recent = await server.handle_request(
                "GET", f"/trace/recent?name=ledger.charge&limit=5"
            )
            by_trace = await server.handle_request(
                "GET", f"/trace/recent?trace={body['trace']}"
            )
            bad = await server.handle_request(
                "GET", "/trace/recent?limit=banana"
            )
            await server.stop()
            return body, recent, by_trace, bad

        body, recent, by_trace, bad = run(go())
        assert recent[0] == 200
        assert [s["name"] for s in recent[1]["spans"]] == ["ledger.charge"]
        assert recent[1]["emitted"] >= 4
        assert all(
            s["trace"] == body["trace"] for s in by_trace[1]["spans"]
        )
        assert bad[0] == 400

    def test_obs_burn_ranks_users(self, store):
        server = make_server(store, floor=Fraction(1, 8))
        client = InProcessClient(server)

        async def go():
            for _ in range(2):
                await client.publish(**publish_payload(user="hot"))
            await client.publish(**publish_payload(user="cold"))
            result = await server.handle_request("GET", "/obs/burn")
            await server.stop()
            return result

        status, body = run(go())
        assert status == 200
        assert body["users"] == 2
        assert [row["user"] for row in body["rows"]] == ["hot", "cold"]
        assert body["rows"][0]["remaining_charges"] == 1
        # In-process the proximity dict keeps int keys (JSON transport
        # would stringify them; the obs CLI normalizes both).
        assert body["floor_proximity"][1] == 1

    def test_burn_gauges_in_scrape(self, store):
        server = make_server(store, floor=Fraction(1, 8))
        client = InProcessClient(server)

        async def go():
            await client.publish(**publish_payload(user="hot"))
            text = server.telemetry.registry.render()
            await server.stop()
            return text

        text = run(go())
        assert 'repro_user_spent_fraction{user="hot"}' in text
        assert 'repro_budget_users_near_floor{within="2"} 1' in text
        assert "repro_deployment_epsilon_spent" in text


class TestHealthz:
    def test_durable_ledger_health_fields(self, store, tmp_path):
        server = make_server(
            store, ledger_dir=tmp_path / "ledger", ledger_fsync="always"
        )
        client = InProcessClient(server)

        async def go():
            await client.publish(**publish_payload())
            health = await server.handle_request("GET", "/healthz")
            await server.stop()
            return health

        status, body = run(go())
        assert status == 200
        ledger = body["ledger"]
        assert ledger["backend"] == "durable"
        assert ledger["journal_bytes"] > 0
        assert ledger["seq"] >= 1
        assert ledger["fsyncs"] >= 1
        assert ledger["last_fsync_ms"] >= 0.0
        assert ledger["compactions"] == 0


class TestAuditEvents:
    def test_audit_findings_counted_and_always_traced(self, store):
        server = make_server(
            store, audit_rate=1.0, audit_every=1, audit_seed=5
        )
        client = InProcessClient(server)

        async def go():
            await asyncio.gather(*[
                client.publish(**publish_payload(user=f"u{i}"))
                for i in range(8)
            ])
            await server.stop()

        run(go())
        counter = server.telemetry.audit_findings
        total = sum(child.value for _, child in counter.children())
        assert total >= 1
        # Events bypass the (zero) sampling rate.
        events = server.telemetry.tracer.recent(10, name="audit.finding")
        assert len(events) >= 1
        assert "flagged" in events[0]["attrs"]


class TestBatcherStats:
    def run_batch(self, telemetry=None, **kwargs):
        import numpy as np

        def execute(tables, rows):
            return np.asarray(rows)

        batcher = MicroBatcher(execute, telemetry=telemetry, **kwargs)

        async def go():
            await asyncio.gather(*[
                batcher.submit(0, i % 3) for i in range(5)
            ])

        run(go())
        return batcher

    def test_flush_reason_breakdown(self):
        batcher = self.run_batch(window=0.001, max_size=4)
        reasons = batcher.stats["flush_reasons"]
        assert reasons["max_size"] == 1
        assert reasons["deadline"] == 1
        assert reasons["close"] == 0
        assert batcher.stats["batches"] == 2

    def test_immediate_mode_counts_immediate(self):
        batcher = self.run_batch(window=0.0)
        assert batcher.stats["flush_reasons"]["immediate"] == 5

    def test_occupancy_histogram_buckets(self):
        batcher = self.run_batch(window=0.001, max_size=4)
        occupancy = batcher.stats["occupancy"]
        assert occupancy["4"] == 1  # the size-triggered flush
        assert occupancy["1"] == 1  # the deadline flush of the leftover
        assert sum(occupancy.values()) == batcher.stats["batches"]

    def test_telemetry_metrics_follow_stats(self):
        telemetry = Telemetry(MetricsRegistry())
        batcher = self.run_batch(
            telemetry=telemetry, window=0.001, max_size=4
        )
        flushes = {
            labels[0]: child.value
            for labels, child in telemetry.batch_flushes.children()
        }
        assert flushes == {"max_size": 1.0, "deadline": 1.0}
        assert telemetry.batch_size.count == batcher.stats["batches"]
