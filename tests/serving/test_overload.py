"""Overload protection: admission control, brownout, WAL circuit breaker.

The load-bearing invariant everywhere below: a shed or breaker-rejected
request spends **zero** budget — the gate runs strictly before any
ledger interaction, so the ledger's release count equals the number of
200s, exactly.
"""

import asyncio
from fractions import Fraction

import pytest

from repro.exceptions import ValidationError
from repro.release.artifacts import ArtifactSpec, ArtifactStore
from repro.release.durable_ledger import (
    DurableLedger,
    MemoryLedgerBook,
    verify_ledger_dir,
)
from repro.serving import (
    AdmissionController,
    FaultInjector,
    FaultyFS,
    InProcessClient,
    MechanismServer,
    ShedDecision,
    WALCircuitBreaker,
    fsync_storm,
    memory_overlay,
)

HALF = Fraction(1, 2)


@pytest.fixture()
def store(tmp_path):
    store = ArtifactStore(tmp_path / "artifacts")
    store.get_or_compile(ArtifactSpec("geometric", 8, HALF))
    return store


def make_server(store, **kwargs):
    kwargs.setdefault("batch_window", 0.001)
    kwargs.setdefault("audit_rate", 0.0)
    kwargs.setdefault("seed", 11)
    server = MechanismServer(store, **kwargs)
    server.load_store()
    return server


def run(coro):
    return asyncio.run(coro)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestAdmissionController:
    def test_capacity_bound_sheds_429(self):
        gate = AdmissionController(capacity=2)
        assert gate.try_admit() is None
        assert gate.try_admit() is None
        shed = gate.try_admit()
        assert isinstance(shed, ShedDecision)
        assert (shed.status, shed.reason) == (429, "queue_full")
        assert shed.retry_after > 0
        gate.release(0.01)
        assert gate.try_admit() is None
        assert gate.stats["admitted"] == 3
        assert gate.stats["shed_queue_full"] == 1
        assert gate.stats["peak_inflight"] == 2

    def test_inflight_never_exceeds_capacity(self):
        gate = AdmissionController(capacity=3)
        for _ in range(50):
            gate.try_admit()
            assert gate.inflight <= 3
        assert gate.stats["peak_inflight"] == 3

    def test_deadline_shed_uses_ewma_estimate(self):
        gate = AdmissionController(capacity=0, shed_deadline=0.05)
        # Teach the EWMA a 100ms service time, then hold one in flight.
        assert gate.try_admit() is None
        gate.release(0.1)
        assert gate.try_admit() is None
        assert gate.estimated_wait() == pytest.approx(0.1)
        shed = gate.try_admit()
        assert (shed.status, shed.reason) == (503, "deadline")
        assert shed.retry_after == pytest.approx(0.1)
        # Drain the queue: the estimate drops below the deadline again.
        gate.release(0.1)
        assert gate.try_admit() is None

    def test_request_deadline_tightens_the_server_one(self):
        gate = AdmissionController(capacity=0, shed_deadline=0.0)
        gate.try_admit()
        gate.release(0.2)
        gate.try_admit()
        # No server-wide deadline, but this request only has 50ms.
        shed = gate.try_admit(deadline=0.05)
        assert (shed.status, shed.reason) == (503, "deadline")
        # A patient request still gets in.
        assert gate.try_admit(deadline=10.0) is None

    def test_release_is_safe_without_an_admit(self):
        gate = AdmissionController(capacity=1)
        gate.release(0.01)
        assert gate.inflight == 0

    def test_brownout_trips_on_sustained_shedding_and_clears(self):
        gate = AdmissionController(
            capacity=1, brownout_threshold=0.5, brownout_window=4
        )
        assert gate.try_admit() is None  # occupy the only slot
        assert not gate.brownout
        for _ in range(4):
            gate.try_admit()  # all shed
        assert gate.brownout
        assert gate.stats["brownouts"] == 1
        gate.release(0.001)
        for _ in range(4):
            assert gate.try_admit() is None
            gate.release(0.001)
        assert not gate.brownout

    def test_snapshot_shape(self):
        gate = AdmissionController(capacity=8, shed_deadline=0.5)
        snap = gate.snapshot()
        assert snap["capacity"] == 8
        assert snap["inflight"] == 0
        assert snap["brownout"] is False
        assert "service_ewma_ms" in snap

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity": -1},
            {"shed_deadline": -0.5},
            {"brownout_threshold": 0.0},
            {"brownout_threshold": 1.5},
            {"brownout_window": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValidationError):
            AdmissionController(**kwargs)


class TestWALCircuitBreaker:
    def test_trip_probe_reset_cycle(self):
        clock = FakeClock()
        breaker = WALCircuitBreaker(policy="reject", cooldown=1.0, clock=clock)
        assert not breaker.open
        assert not breaker.should_probe()
        breaker.trip("injected ENOSPC")
        assert breaker.open and breaker.trips == 1
        assert breaker.retry_after() == pytest.approx(1.0)
        # Within the cooldown: no probe granted.
        clock.now = 0.5
        assert not breaker.should_probe()
        clock.now = 1.0
        assert breaker.should_probe()
        # Only one probe per window.
        assert not breaker.should_probe()
        breaker.reset()
        assert not breaker.open
        assert breaker.recoveries == 1
        assert breaker.retry_after() == 0.0

    def test_retrip_while_open_does_not_double_count(self):
        breaker = WALCircuitBreaker(policy="memory", cooldown=0.1)
        breaker.trip("first")
        breaker.trip("second")
        assert breaker.trips == 1
        assert breaker.reason == "second"

    def test_validation(self):
        with pytest.raises(ValidationError):
            WALCircuitBreaker(policy="yolo")
        with pytest.raises(ValidationError):
            WALCircuitBreaker(cooldown=0.0)

    def test_snapshot(self):
        breaker = WALCircuitBreaker(policy="reject", cooldown=0.5)
        breaker.trip("EIO")
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["policy"] == "reject"
        assert snap["reason"] == "EIO"


class TestMemoryOverlay:
    def test_overlay_preserves_floors_and_replays(self):
        book = MemoryLedgerBook(HALF ** 3)
        book.charge("alice", HALF, idem="a-1")
        book.charge("alice", HALF)
        book.charge("bob", HALF)
        book.record_result("a-1", 200, {"value": 5})
        overlay = memory_overlay(book)
        assert overlay.view("alice").cumulative_alpha == HALF ** 2
        assert overlay.view("bob").cumulative_alpha == HALF
        # The floor keeps binding exactly where it stood: one more
        # charge fits, the next is rejected.
        assert overlay.charge("alice", HALF).outcome == "charged"
        assert overlay.charge("alice", HALF).outcome == "rejected"
        # Completed idempotent results still replay.
        decision = overlay.charge("alice", HALF, idem="a-1")
        assert decision.outcome == "replayed"
        assert decision.replay == (200, {"value": 5})

    def test_overlay_skips_userless_books(self):
        book = MemoryLedgerBook(HALF ** 3)
        book.book("ghost")  # created but never charged
        overlay = memory_overlay(book)
        assert overlay.view("ghost") is None


class TestServerSheds:
    """Admission control on the live publish path (in-process)."""

    def test_shed_is_429_with_retry_after_and_zero_charge(self, store):
        # A wide batch window parks admitted publishes in the batcher,
        # so concurrent requests genuinely contend for the queue.
        server = make_server(
            store, queue_depth=2, batch_window=0.05, floor=0
        )
        client = InProcessClient(server)

        async def go():
            results = await asyncio.gather(
                *(
                    client.publish(
                        user=f"u{i}", n=8, alpha="1/2", true_result=3
                    )
                    for i in range(6)
                )
            )
            await server.stop()
            return results

        results = run(go())
        by_status = {}
        for status, body in results:
            by_status.setdefault(status, []).append(body)
        assert len(by_status[200]) == 2
        assert len(by_status[429]) == 4
        for body in by_status[429]:
            assert body["shed"] == "queue_full"
            assert body["retry_after"] >= 0.01
            assert "cumulative_alpha" not in body
        # Zero budget spent by sheds: exactly one charge per 200.
        assert server.ledgers.users() == 2
        assert server.metrics["shed"] == 4
        assert server.admission.stats["admitted"] == 2

    def test_deadline_ms_sheds_503(self, store):
        server = make_server(store, shed_deadline=5.0, batch_window=0.01)
        # Teach the EWMA a slow service time and hold a slot.
        server.admission.release(2.0)
        server.admission.service_ewma = 2.0
        server.admission.inflight = 1
        client = InProcessClient(server)

        async def go():
            status, body = await server.publish(
                {
                    "user": "u",
                    "n": 8,
                    "alpha": "1/2",
                    "true_result": 3,
                    "deadline_ms": 100,
                }
            )
            # The same request without the tight deadline is admitted
            # (estimated wait 2s < server-wide 5s).
            server.admission.inflight = 0
            ok_status, _ = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3
            )
            await server.stop()
            return status, body, ok_status

        status, body, ok_status = run(go())
        assert status == 503
        assert body["shed"] == "deadline"
        assert ok_status == 200

    def test_retry_after_header_on_the_wire(self, store):
        server = make_server(store, queue_depth=1, batch_window=0.05)

        async def one_request(idx):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            body = (
                b'{"user": "u%d", "n": 8, "alpha": "1/2", '
                b'"true_result": 3}' % idx
            )
            head = (
                f"POST /publish HTTP/1.1\r\nHost: t\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode()
            writer.write(head + body)
            await writer.drain()
            raw = await reader.read(65536)
            writer.close()
            return raw

        async def go():
            await server.start()
            # Concurrent connections: the first publish parks in the
            # batcher window, the surplus must be shed with a
            # Retry-After header on the wire.
            raws = await asyncio.gather(
                *(one_request(i) for i in range(5))
            )
            await server.stop()
            return raws

        raws = run(go())
        texts = [raw.decode("latin-1").lower() for raw in raws]
        shed = [t for t in texts if " 429 " in t.split("\r\n", 1)[0]]
        assert shed, "expected at least one shed response"
        assert all("retry-after:" in t for t in shed)

    def test_brownout_sheds_audit_and_trace_work(self, store):
        server = make_server(
            store, queue_depth=1, batch_window=0.05,
            audit_rate=1.0, trace_rate=1.0,
        )
        server.admission.brownout_window = 4
        server.admission._window = [0] * 4
        client = InProcessClient(server)

        async def go():
            # Saturate: one admitted parks, a burst sheds, tripping the
            # 4-wide brownout window.
            results = await asyncio.gather(
                *(
                    client.publish(
                        user=f"u{i}", n=8, alpha="1/2", true_result=3
                    )
                    for i in range(8)
                )
            )
            await server.stop()
            return results

        results = run(go())
        assert any(status == 200 for status, _ in results)
        assert server.admission.stats["brownouts"] >= 1
        # Optional work was shed before user work: the skips are counted
        # (audit on the batch flush, trace on the sampled publish).
        assert server.metrics["brownout_skips"] >= 1

    def test_healthz_readyz_and_metrics_expose_admission(self, store):
        server = make_server(store, queue_depth=4, worker_id="w0")
        client = InProcessClient(server)

        async def go():
            health = await client.get("/healthz")
            ready = await client.get("/readyz")
            metrics = await client.get("/metrics")
            await server.stop()
            return health, ready, metrics

        (hs, health), (rs, ready), (ms, metrics) = run(go())
        assert hs == 200
        assert health["admission"]["capacity"] == 4
        assert health["breaker"]["state"] == "closed"
        assert health["worker"] == "w0"
        assert (rs, ready["ready"]) == (200, True)
        assert ready["worker"] == "w0"
        assert ms == 200
        assert metrics["admission"]["capacity"] == 4
        assert metrics["breaker"]["policy"] == "reject"

    def test_draining_server_is_not_ready(self, store):
        server = make_server(store)
        server._draining = True
        ready, reasons = server.readiness()
        assert not ready
        assert "draining" in reasons


def make_faulty_ledger_server(store, tmp_path, *, policy, after, times,
                              cooldown=0.05, **kwargs):
    """A server whose WAL fsyncs fail ``times`` times starting ``after``."""
    ledger_dir = tmp_path / "wal"
    DurableLedger(ledger_dir, HALF ** 8).close()  # settle meta cleanly
    faults = FaultInjector()
    fsync_storm(faults, after=after, times=times)
    fs = FaultyFS(faults)

    def factory():
        return DurableLedger(
            ledger_dir, HALF ** 8, fsync="always", fs=fs
        )

    kwargs.setdefault("batch_window", 0.001)
    kwargs.setdefault("audit_rate", 0.0)
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("floor", HALF ** 8)
    server = MechanismServer(
        store, ledger=factory(), ledger_factory=factory,
        wal_failure_policy=policy, breaker_cooldown=cooldown, **kwargs
    )
    server.load_store()
    return server, ledger_dir


class TestWALBreakerOnServer:
    def test_reject_policy_refuses_then_recovers(self, store, tmp_path):
        server, ledger_dir = make_faulty_ledger_server(
            store, tmp_path, policy="reject-new-charges", after=1, times=2
        )
        client = InProcessClient(server)

        async def go():
            out = []
            s, _ = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3, idem="ok-1"
            )
            out.append(s)  # 200: fsync healthy
            s, body = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3, idem="boom"
            )
            out.append((s, body))  # the storm hits: 503, nothing spent
            s, body2 = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3, idem="boom2"
            )
            out.append((s, body2))  # breaker open: rejected pre-charge
            await asyncio.sleep(0.06)  # past the cooldown
            # First probe burns the storm's last injected failure...
            s, _ = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3, idem="probe1"
            )
            out.append(s)
            await asyncio.sleep(0.06)
            s, body3 = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3, idem="ok-2"
            )
            out.append((s, body3))
            await server.stop()
            return out

        out = run(go())
        assert out[0] == 200
        status, body = out[1]
        assert status == 503 and body["retry_after"] > 0
        status, body2 = out[2]
        assert status == 503
        assert body2.get("breaker") == "open"
        status, body3 = out[4]
        assert status == 200
        assert "durability" not in body3  # durable again, no alarm
        assert not server.breaker.open
        assert server.breaker.recoveries == 1
        assert server.metrics["breaker_rejected"] >= 1
        # Durable truth: only the acked charges are journaled.
        report = verify_ledger_dir(ledger_dir)
        assert report["ok"], report["failures"]
        recovered = DurableLedger(ledger_dir, HALF ** 8)
        assert recovered.view("u").cumulative_alpha >= HALF ** 3
        recovered.close()

    def test_memory_policy_keeps_serving_with_a_loud_alarm(
        self, store, tmp_path
    ):
        server, ledger_dir = make_faulty_ledger_server(
            store, tmp_path, policy="memory-mode-with-alarm",
            after=1, times=1,
        )
        client = InProcessClient(server)

        async def go():
            out = []
            s, _ = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3
            )
            out.append((s, _))
            s, body = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3
            )
            out.append((s, body))  # fsync fails -> volatile release
            health = await client.get("/healthz")
            ready = await client.get("/readyz")
            await asyncio.sleep(0.06)
            s, body2 = await client.publish(
                user="u", n=8, alpha="1/2", true_result=3
            )
            out.append((s, body2))  # probe recovers -> durable again
            ready_after = await client.get("/readyz")
            await server.stop()
            return out, health, ready, ready_after

        out, (_, health), (rstatus, ready), (rstatus2, _) = run(go())
        assert out[0][0] == 200
        status, body = out[1]
        assert status == 200
        assert body["durability"] == "volatile"
        assert health["durability"] == "volatile"
        assert health["breaker"]["state"] == "open"
        # Volatile mode serves but must NOT advertise readiness.
        assert rstatus == 503 and ready["ready"] is False
        status2, body2 = out[2]
        assert status2 == 200
        assert "durability" not in body2
        assert rstatus2 == 200
        # The outage window was backfilled: all three charges are in
        # the recovered durable ledger.
        recovered = DurableLedger(ledger_dir, HALF ** 8)
        assert recovered.view("u").cumulative_alpha == HALF ** 3
        recovered.close()

    def test_memory_policy_floor_binds_across_the_outage(
        self, store, tmp_path
    ):
        server, _ = make_faulty_ledger_server(
            store, tmp_path, policy="memory-mode-with-alarm",
            after=2, times=50, cooldown=60.0, floor=HALF ** 8,
        )
        client = InProcessClient(server)

        async def go():
            statuses = []
            for i in range(12):
                s, _ = await client.publish(
                    user="u", n=8, alpha="1/2", true_result=3
                )
                statuses.append(s)
            await server.stop()
            return statuses

        statuses = run(go())
        # Two durable charges, then volatile ones — but never past the
        # floor of (1/2)^8: exactly 8 successes total.
        assert statuses.count(200) == 8
        assert statuses[8:] == [429] * 4
