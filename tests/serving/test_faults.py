"""Tests for the deterministic fault-injection harness itself.

The chaos suite is only as trustworthy as its knives: these tests pin
the injector's countdown semantics, the ``BaseException`` nature of
:class:`InjectedCrash`, the filesystem shim's tear/short/fail behavior,
and the :class:`FlakyEndpoint` proxy modes.
"""

import asyncio

import pytest

from repro.exceptions import ReproError
from repro.release.durable_ledger import NO_FAULTS
from repro.serving.batching import MicroBatcher
from repro.serving.faults import (
    CRASH_POINTS,
    FaultInjector,
    FaultyFS,
    InjectedCrash,
)


class TestFaultInjector:
    def test_unarmed_points_never_fire_but_count(self):
        faults = FaultInjector()
        for point in CRASH_POINTS:
            faults.crash(point)
        assert all(faults.hits[p] == 1 for p in CRASH_POINTS)
        assert faults.fired == []

    def test_injected_crash_is_not_an_exception(self):
        assert issubclass(InjectedCrash, BaseException)
        assert not issubclass(InjectedCrash, Exception)
        faults = FaultInjector().crash_at("charge.after-fsync")
        with pytest.raises(InjectedCrash) as info:
            try:
                faults.crash("charge.after-fsync")
            except Exception:  # must NOT absorb a crash
                pytest.fail("except Exception absorbed an InjectedCrash")
        assert info.value.point == "charge.after-fsync"

    def test_after_and_times_countdowns(self):
        faults = FaultInjector().crash_at("p", after=2, times=2)
        fired = []
        for _ in range(6):
            try:
                faults.crash("p")
                fired.append(False)
            except InjectedCrash:
                fired.append(True)
        assert fired == [False, False, True, True, False, False]
        assert faults.fired == ["p", "p"]

    def test_crash_points_reject_non_crash_plans(self):
        faults = FaultInjector().fail_at("charge.before-append")
        with pytest.raises(ReproError, match="pure crash point"):
            faults.crash("charge.before-append")

    def test_disarm(self):
        faults = FaultInjector().crash_at("p")
        faults.disarm("p")
        faults.crash("p")  # no raise

    def test_no_faults_is_inert(self):
        for point in CRASH_POINTS:
            NO_FAULTS.crash(point)


class TestFaultyFS:
    def test_tear_persists_prefix_then_dies(self, tmp_path):
        faults = FaultInjector().tear_at("fs.write", keep=5)
        fs = FaultyFS(faults)
        handle = fs.open_append(tmp_path / "f")
        with pytest.raises(InjectedCrash):
            fs.write(handle, b"0123456789")
        handle.close()
        assert (tmp_path / "f").read_bytes() == b"01234"

    def test_short_write_persists_prefix_then_oserror(self, tmp_path):
        faults = FaultInjector().short_at("fs.write", keep=3)
        fs = FaultyFS(faults)
        handle = fs.open_append(tmp_path / "f")
        with pytest.raises(OSError):
            fs.write(handle, b"0123456789")
        handle.close()
        assert (tmp_path / "f").read_bytes() == b"012"

    def test_fail_persists_nothing(self, tmp_path):
        faults = FaultInjector().fail_at("fs.write")
        fs = FaultyFS(faults)
        handle = fs.open_append(tmp_path / "f")
        with pytest.raises(OSError) as info:
            fs.write(handle, b"0123456789")
        handle.close()
        assert "ENOSPC" in str(info.value)
        assert (tmp_path / "f").read_bytes() == b""

    def test_passthrough_when_unarmed(self, tmp_path):
        fs = FaultyFS(FaultInjector())
        handle = fs.open_append(tmp_path / "f")
        fs.write(handle, b"abc")
        fs.fsync(handle)
        fs.truncate(handle, 1)
        handle.close()
        assert (tmp_path / "f").read_bytes() == b"a"


class TestBatcherCrashPoints:
    def test_crash_fails_futures_instead_of_stranding_them(self):
        async def main():
            faults = FaultInjector().crash_at("batcher.before-execute")
            batcher = MicroBatcher(
                lambda tables, rows: rows, window=0.001, faults=faults
            )
            with pytest.raises(InjectedCrash):
                await batcher.submit(0, 1)
            # the batcher survives for the next batch:
            faults.disarm("batcher.before-execute")
            assert await batcher.submit(0, 7) == 7
            batcher.close()

        asyncio.run(main())

    def test_crash_after_execute_still_fails_futures(self):
        async def main():
            faults = FaultInjector().crash_at("batcher.after-execute")
            batcher = MicroBatcher(
                lambda tables, rows: rows, window=0.001, faults=faults
            )
            with pytest.raises(InjectedCrash):
                await batcher.submit(0, 1)
            batcher.close()

        asyncio.run(main())
