"""Certified graceful degradation: quarantined bespoke artifacts fall
back to the same-``(n, alpha)`` geometric mechanism (``--degraded``).

The theorem doing the work (Gupte–Sundararajan, Theorem 1): the
alpha-ratio geometric mechanism is universally optimal for minimax
agents, so every bespoke alpha-private artifact is a remap of it —
serving the geometric release in its place preserves privacy exactly
and loses nothing a rational consumer could not recover client-side.
Hence: only ``kind="optimal"`` degrades; a broken *geometric* artifact
has nothing below it and stays a 503.
"""

import asyncio
import json
from fractions import Fraction

import pytest

from repro.exceptions import ValidationError
from repro.release.artifacts import (
    ArtifactSpec,
    ArtifactStore,
    _payload_digest,
)
from repro.serving import (
    InProcessClient,
    MechanismServer,
    fallback_spec,
    resolve_fallbacks,
)

HALF = Fraction(1, 2)
OPTIMAL = ArtifactSpec("optimal", 4, HALF, loss="absolute")
GEOMETRIC = ArtifactSpec("geometric", 4, HALF)


def tamper(store, spec):
    """Corrupt a stored artifact so it loads but fails verification."""
    entry = store._entry_path(spec.key())
    payload = json.loads(entry.read_text())
    kernel = payload["kernel"]
    kernel[0][0], kernel[0][1] = kernel[0][1], kernel[0][0]
    payload["digest"] = _payload_digest(payload)
    entry.write_text(json.dumps(payload))


@pytest.fixture()
def store(tmp_path):
    store = ArtifactStore(tmp_path / "artifacts")
    store.get_or_compile(GEOMETRIC)
    store.get_or_compile(OPTIMAL)
    return store


def make_server(store, **kwargs):
    kwargs.setdefault("batch_window", 0.001)
    kwargs.setdefault("audit_rate", 0.0)
    kwargs.setdefault("seed", 11)
    server = MechanismServer(store, **kwargs)
    server.load_store()
    return server


def run(coro):
    return asyncio.run(coro)


class TestFallbackSpec:
    def test_optimal_degrades_to_same_n_alpha_geometric(self):
        target = fallback_spec(OPTIMAL)
        assert target == GEOMETRIC

    def test_geometric_has_no_fallback(self):
        assert fallback_spec(GEOMETRIC) is None

    def test_unknown_degraded_mode_is_rejected(self, store):
        with pytest.raises(ValidationError, match="degraded"):
            MechanismServer(store, degraded="best-effort")


class TestDegradedServing:
    def test_default_mode_keeps_quarantine_503(self, store):
        tamper(store, OPTIMAL)
        server = make_server(store)  # --degraded=503 (the default)
        client = InProcessClient(server)

        async def go():
            status, body = await client.publish(
                user="u", n=4, alpha="1/2", true_result=1,
                kind="optimal", loss="absolute",
            )
            await server.stop()
            return status, body

        status, body = run(go())
        assert status == 503
        assert "quarantined" in body["error"]

    def test_quarantined_optimal_serves_degraded_geometric(self, store):
        tamper(store, OPTIMAL)
        server = make_server(store, degraded="geometric")
        assert len(server.quarantined) == 1
        entry = next(iter(server._quarantined.values()))
        assert entry["fallback_key"] == GEOMETRIC.key()
        client = InProcessClient(server)

        async def go():
            status, body = await client.publish(
                user="u", n=4, alpha="1/2", true_result=1,
                kind="optimal", loss="absolute",
            )
            _, listing = await client.get("/artifacts")
            _, metrics = await client.get("/metrics")
            await server.stop()
            return status, body, listing, metrics

        status, body, listing, metrics = run(go())
        assert status == 200
        # Loud degradation: the response names both mechanisms.
        assert body["degraded"] == "geometric"
        assert body["requested_key"] == OPTIMAL.key()[:12]
        assert body["key"] == GEOMETRIC.key()[:12]
        assert 0 <= body["value"] <= 4
        # The ledger charged the same alpha — floor maths unchanged.
        assert body["alpha"] == "1/2"
        assert body["cumulative_alpha"] == "1/2"
        assert listing["quarantined"][0]["degraded_to"] == (
            GEOMETRIC.key()[:12]
        )
        assert metrics["metrics"]["degraded"] == 1

    def test_fallback_is_compiled_when_missing(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        store.get_or_compile(OPTIMAL)
        tamper(store, OPTIMAL)
        # No geometric artifact anywhere: the resolver compiles one
        # (closed-form, zero LP solves) and verifies it at load.
        server = make_server(store, degraded="geometric")
        assert [d.spec for d in server.deployments] == [GEOMETRIC]
        client = InProcessClient(server)

        async def go():
            status, body = await client.publish(
                user="u", n=4, alpha="1/2", true_result=2,
                kind="optimal", loss="absolute",
            )
            await server.stop()
            return status, body

        status, body = run(go())
        assert status == 200
        assert body["degraded"] == "geometric"

    def test_quarantined_geometric_never_degrades(self, store):
        tamper(store, GEOMETRIC)
        server = make_server(store, degraded="geometric")
        assert resolve_fallbacks(server) == 0
        client = InProcessClient(server)

        async def go():
            status, body = await client.publish(
                user="u", n=4, alpha="1/2", true_result=1
            )
            await server.stop()
            return status, body

        status, body = run(go())
        assert status == 503
        assert "quarantined" in body["error"]

    def test_resolve_is_idempotent(self, store):
        tamper(store, OPTIMAL)
        server = make_server(store, degraded="geometric")
        assert resolve_fallbacks(server) == 1  # already attached
        assert len(server.deployments) == 1

    def test_degraded_responses_pass_the_online_audit(self, store):
        """The auditor replays degraded traffic against the *geometric*
        law — the certificate that the fallback serves exactly what it
        claims to."""
        tamper(store, OPTIMAL)
        server = make_server(
            store, degraded="geometric", audit_rate=1.0, audit_every=0,
        )
        client = InProcessClient(server)

        async def go():
            for i in range(300):
                status, body = await client.publish(
                    user=f"u{i}", n=4, alpha="1/2", true_result=1,
                    kind="optimal", loss="absolute",
                )
                assert status == 200
                assert body["degraded"] == "geometric"
            findings = server.audit()
            await server.stop()
            return findings

        findings = run(go())
        assert server.auditor.samples > 0
        assert not any(f.flagged for f in findings)
