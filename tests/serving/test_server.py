"""Tests for the mechanism server (in-process and over HTTP)."""

import asyncio
from fractions import Fraction

import pytest

from repro.exceptions import ReproError
from repro.release.artifacts import (
    ArtifactSpec,
    ArtifactStore,
    compile_artifact,
)
from repro.serving import (
    HTTPServingClient,
    InProcessClient,
    MechanismServer,
)


@pytest.fixture()
def store(tmp_path):
    store = ArtifactStore(tmp_path / "artifacts")
    store.get_or_compile(ArtifactSpec("geometric", 8, Fraction(1, 2)))
    store.get_or_compile(ArtifactSpec("geometric", 4, Fraction(1, 4)))
    store.get_or_compile(
        ArtifactSpec("optimal", 4, Fraction(1, 2), loss="absolute")
    )
    return store


def make_server(store, **kwargs):
    kwargs.setdefault("batch_window", 0.001)
    kwargs.setdefault("audit_rate", 0.0)
    kwargs.setdefault("seed", 11)
    server = MechanismServer(store, **kwargs)
    server.load_store()
    return server


def run(coro):
    return asyncio.run(coro)


class TestLifecycle:
    def test_needs_a_store(self, monkeypatch):
        from repro.release import artifacts as artifacts_module

        monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
        monkeypatch.setattr(
            artifacts_module, "_default_store", artifacts_module._UNSET
        )
        with pytest.raises(ReproError, match="artifact store"):
            MechanismServer(None)

    def test_load_store_loads_everything_verified(self, store):
        server = make_server(store)
        assert len(server.deployments) == 3
        assert all(d.verification.ok for d in server.deployments)

    def test_load_miss_is_an_error_not_a_compile(self, store):
        server = make_server(store)
        before = store.stats["compiles"]
        with pytest.raises(ReproError, match="repro compile"):
            server.load(ArtifactSpec("geometric", 100, Fraction(1, 3)))
        assert store.stats["compiles"] == before

    def test_load_is_idempotent(self, store):
        server = make_server(store)
        spec = ArtifactSpec("geometric", 8, Fraction(1, 2))
        assert server.load(spec) == server.load(spec)
        assert len(server.deployments) == 3

    def test_tampered_artifact_refused_at_load(self, store):
        artifact = compile_artifact("geometric", 3, Fraction(1, 2))
        artifact.kernel[0][0], artifact.kernel[0][1] = (
            artifact.kernel[0][1],
            artifact.kernel[0][0],
        )
        server = make_server(store)
        with pytest.raises(ReproError, match="verification"):
            server.load_artifact(artifact)


class TestPublish:
    def test_publish_round_trip(self, store):
        server = make_server(store)
        client = InProcessClient(server)

        async def go():
            return await client.publish(
                user="gov", n=8, alpha="1/2", true_result=3
            )

        status, body = run(go())
        assert status == 200
        assert 0 <= body["value"] <= 8
        assert body["alpha"] == "1/2"
        assert body["cumulative_alpha"] == "1/2"

    def test_optimal_deployment_served_by_spec_fields(self, store):
        server = make_server(store)
        client = InProcessClient(server)

        async def go():
            return await client.publish(
                user="gov", n=4, alpha="1/2", true_result=2,
                kind="optimal", loss="absolute",
            )

        status, body = run(go())
        assert status == 200
        assert 0 <= body["value"] <= 4

    def test_unknown_deployment_is_404_and_never_solves(self, store):
        server = make_server(store)
        client = InProcessClient(server)
        before = store.stats["compiles"]

        async def go():
            return await client.publish(
                user="gov", n=50, alpha="1/2", true_result=3
            )

        status, _ = run(go())
        assert status == 404
        assert store.stats["compiles"] == before
        assert server.metrics["not_found"] == 1

    def test_bad_payloads_are_400(self, store):
        server = make_server(store)

        async def go():
            return [
                await server.publish({}),  # no user
                await server.publish({"user": "g"}),  # no deployment
                await server.publish(
                    {"user": "g", "n": 8, "alpha": "zebra",
                     "true_result": 1}
                ),
                await server.publish(
                    {"user": "g", "n": 8, "alpha": "1/2",
                     "true_result": 99}  # out of range
                ),
                await server.publish(
                    {"user": "g", "n": 8, "alpha": "1/2",
                     "true_result": "many"}
                ),
            ]

        statuses = [status for status, _ in run(go())]
        assert statuses == [400] * 5
        assert server.metrics["bad_request"] == 5

    def test_budget_floor_gives_429_with_accounting(self, store):
        server = make_server(store, floor=Fraction(1, 4))
        client = InProcessClient(server)

        async def go():
            first = await client.publish(
                user="u", n=8, alpha="1/2", true_result=0
            )
            second = await client.publish(
                user="u", n=8, alpha="1/2", true_result=0
            )
            third = await client.publish(
                user="u", n=8, alpha="1/2", true_result=0
            )
            other = await client.publish(
                user="other", n=8, alpha="1/2", true_result=0
            )
            return first, second, third, other

        first, second, third, other = run(go())
        assert first[0] == 200 and second[0] == 200
        assert third[0] == 429
        assert third[1]["cumulative_alpha"] == "1/4"
        # Budgets are per-user: a fresh user is unaffected.
        assert other[0] == 200
        assert server.metrics["rejected_budget"] == 1

    def test_concurrent_publishes_fuse_across_deployments(self, store):
        server = make_server(store, batch_window=0.005)
        client = InProcessClient(server)

        async def go():
            return await asyncio.gather(*(
                [client.publish(user=f"a{i}", n=8, alpha="1/2",
                               true_result=4) for i in range(10)]
                + [client.publish(user=f"b{i}", n=4, alpha="1/4",
                                  true_result=1) for i in range(10)]
            ))

        results = run(go())
        assert all(status == 200 for status, _ in results)
        # All 20 mixed n/alpha queries went through one fused gather.
        assert server.batcher.stats["batches"] == 1
        assert server.batcher.stats["max_batch"] == 20


class TestRoutes:
    def test_healthz_artifacts_metrics_ledger(self, store):
        server = make_server(store)
        client = InProcessClient(server)

        async def go():
            await client.publish(user="gov", n=8, alpha="1/2", true_result=1)
            return (
                await client.get("/healthz"),
                await client.get("/artifacts"),
                await client.get("/metrics"),
                await client.get("/ledger/gov"),
                await client.get("/ledger/nobody"),
                await client.get("/nope"),
                await server.handle_request("PUT", "/publish"),
            )

        health, artifacts, metrics, ledger, missing, nope, put = run(go())
        assert health[0] == 200
        assert health[1]["status"] == "ok"
        assert health[1]["deployments"] == 3
        assert health[1]["ledger"]["backend"] == "memory"
        assert len(artifacts[1]["artifacts"]) == 3
        assert all(a["verified"] for a in artifacts[1]["artifacts"])
        assert metrics[1]["metrics"]["published"] == 1
        assert metrics[1]["users"] == 1
        assert ledger[0] == 200
        assert ledger[1]["cumulative_alpha"] == "1/2"
        assert missing[0] == 404
        assert nope[0] == 404
        assert put[0] == 405


class TestHTTP:
    def test_http_round_trip_keep_alive(self, store):
        server = make_server(store)

        async def go():
            await server.start(port=0)
            client = HTTPServingClient("127.0.0.1", server.port)
            try:
                publish = await client.publish(
                    user="web", n=8, alpha="1/2", true_result=5
                )
                # Second request rides the same keep-alive connection.
                health = await client.get("/healthz")
                bad = await client.request("POST", "/publish", {"user": 3})
            finally:
                await client.close()
                await server.stop()
            return publish, health, bad

        publish, health, bad = run(go())
        assert publish[0] == 200
        assert 0 <= publish[1]["value"] <= 8
        assert health[0] == 200
        assert health[1]["status"] == "ok"
        assert health[1]["deployments"] == 3
        assert bad[0] == 400

    def test_stop_is_idempotent(self, store):
        server = make_server(store)

        async def go():
            await server.start(port=0)
            await server.stop()
            await server.stop()

        run(go())


class TestAuditIntegration:
    def test_periodic_sweep_flags_injected_tamper(self, store, rng):
        # Load a deployment whose kernel serves alpha=7/8 while its spec
        # claims alpha=1/2 — through the explicit verify=False injection
        # port (load verification would have refused it).
        server = make_server(
            store, audit_rate=1.0, audit_every=1, audit_seed=5
        )
        honest = compile_artifact("geometric", 6, Fraction(7, 8))
        forged_spec = ArtifactSpec("geometric", 6, Fraction(1, 2))
        forged = type(honest)(
            forged_spec, honest.kernel, sampler=honest.sampler
        )
        index = server.load_artifact(forged, verify=False)
        client = InProcessClient(server)

        async def go():
            for batch in range(30):
                await asyncio.gather(*[
                    client.publish(
                        user=f"u{batch}-{i}", n=6, alpha="1/2",
                        true_result=int(rng.integers(0, 7)),
                    )
                    for i in range(100)
                ])

        run(go())
        flagged = server.auditor.flagged()
        assert any(f.key == forged_spec.key() for f in flagged)
        assert server.metrics["audit_flagged"] >= 1
        assert server.metrics["audit_sweeps"] >= 1
        assert index == 3
