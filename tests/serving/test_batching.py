"""Tests for the serving micro-batcher."""

import asyncio

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.serving.batching import MicroBatcher


class Recorder:
    """An executor that records every tick it is handed."""

    def __init__(self, fail=None):
        self.ticks = []
        self.fail = fail

    def __call__(self, tables, rows):
        if self.fail is not None:
            raise self.fail
        self.ticks.append((tables.copy(), rows.copy()))
        # Deterministic output: value = 10*table + row.
        return tables * 10 + rows


def run(coro):
    return asyncio.run(coro)


class TestValidation:
    def test_negative_window_rejected(self):
        with pytest.raises(ValidationError):
            MicroBatcher(Recorder(), window=-0.001)

    def test_zero_max_size_rejected(self):
        with pytest.raises(ValidationError):
            MicroBatcher(Recorder(), max_size=0)


class TestFlushTriggers:
    def test_empty_flush_is_a_noop(self):
        recorder = Recorder()
        batcher = MicroBatcher(recorder)
        batcher.flush()
        assert recorder.ticks == []
        assert batcher.stats["batches"] == 0

    def test_single_query_deadline_flush(self):
        recorder = Recorder()
        batcher = MicroBatcher(recorder, window=0.001, max_size=100)

        async def go():
            return await batcher.submit(0, 3)

        assert run(go()) == 3
        assert batcher.stats["deadline_flushes"] == 1
        assert batcher.stats["size_flushes"] == 0
        assert len(recorder.ticks) == 1

    def test_size_bound_flushes_without_waiting(self):
        recorder = Recorder()
        # A window far too long to ever fire in this test: if the size
        # bound did not flush, the gather below would time out.
        batcher = MicroBatcher(recorder, window=60.0, max_size=4)

        async def go():
            return await asyncio.wait_for(
                asyncio.gather(*[batcher.submit(0, r) for r in range(4)]),
                timeout=5.0,
            )

        assert run(go()) == [0, 1, 2, 3]
        assert batcher.stats["size_flushes"] == 1
        assert batcher.stats["max_batch"] == 4

    def test_window_zero_is_unbatched(self):
        recorder = Recorder()
        batcher = MicroBatcher(recorder, window=0.0, max_size=100)

        async def go():
            return [await batcher.submit(0, r) for r in range(3)]

        assert run(go()) == [0, 1, 2]
        # Every query was its own tick.
        assert batcher.stats["batches"] == 3
        assert all(len(t) == 1 for t, _ in recorder.ticks)

    def test_mixed_deployments_fuse_into_one_tick(self):
        recorder = Recorder()
        batcher = MicroBatcher(recorder, window=0.005, max_size=100)

        async def go():
            return await asyncio.gather(
                batcher.submit(0, 1),
                batcher.submit(2, 5),
                batcher.submit(1, 0),
            )

        assert run(go()) == [1, 25, 10]
        assert len(recorder.ticks) == 1
        tables, rows = recorder.ticks[0]
        assert tables.tolist() == [0, 2, 1]
        assert rows.tolist() == [1, 5, 0]
        assert tables.dtype == np.int64


class TestFailureModes:
    def test_executor_exception_fails_the_whole_batch(self):
        boom = RuntimeError("sampler exploded")
        batcher = MicroBatcher(Recorder(fail=boom), window=0.001)

        async def go():
            results = await asyncio.gather(
                batcher.submit(0, 1),
                batcher.submit(0, 2),
                return_exceptions=True,
            )
            return results

        results = run(go())
        assert all(r is boom for r in results)

    def test_close_fails_pending_queries(self):
        batcher = MicroBatcher(Recorder(), window=60.0, max_size=100)

        async def go():
            task = asyncio.ensure_future(batcher.submit(0, 1))
            await asyncio.sleep(0)  # let the submit park
            assert batcher.pending == 1
            batcher.close()
            with pytest.raises(RuntimeError, match="closed"):
                await task

        run(go())
        assert batcher.pending == 0

    def test_cancelled_caller_does_not_poison_the_batch(self):
        recorder = Recorder()
        batcher = MicroBatcher(recorder, window=0.005, max_size=100)

        async def go():
            doomed = asyncio.ensure_future(batcher.submit(0, 1))
            survivor = asyncio.ensure_future(batcher.submit(0, 2))
            await asyncio.sleep(0)
            doomed.cancel()
            return await survivor

        assert run(go()) == 2
        # The cancelled slot was still part of the fused gather.
        assert len(recorder.ticks[0][0]) == 2


class TestStats:
    def test_counts_accumulate(self):
        batcher = MicroBatcher(Recorder(), window=0.001, max_size=2)

        async def go():
            await asyncio.gather(*[batcher.submit(0, r % 2) for r in range(4)])
            await batcher.submit(0, 0)

        run(go())
        stats = batcher.stats
        assert stats["queries"] == 5
        assert stats["size_flushes"] == 2
        assert stats["deadline_flushes"] == 1
        assert stats["batches"] == 3
        assert stats["max_batch"] == 2
