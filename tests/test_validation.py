"""Tests for the shared validation helpers."""

from fractions import Fraction

import numpy as np
import pytest

from repro.exceptions import NotStochasticError, ValidationError
from repro.validation import (
    as_fraction,
    as_fraction_matrix,
    as_float_matrix,
    check_alpha,
    check_index,
    check_probability_vector,
    check_result_range,
    check_row_stochastic,
    is_exact_array,
)


class TestCheckAlpha:
    def test_interior_values_pass(self):
        check_alpha(Fraction(1, 2))
        check_alpha(0.3)

    @pytest.mark.parametrize("bad", [0, 1, -0.1, 1.5, "0.5", None, True])
    def test_bad_values_rejected(self, bad):
        with pytest.raises(ValidationError):
            check_alpha(bad)

    def test_endpoints_opt_in(self):
        check_alpha(0, allow_endpoints=True)
        check_alpha(1, allow_endpoints=True)

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            check_alpha(float("nan"))


class TestCheckResultRange:
    def test_valid(self):
        assert check_result_range(5) == 5
        assert check_result_range(np.int64(3)) == 3

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "3", True])
    def test_invalid(self, bad):
        with pytest.raises(ValidationError):
            check_result_range(bad)


class TestCheckIndex:
    def test_valid(self):
        assert check_index(0, 3) == 0
        assert check_index(3, 3) == 3

    @pytest.mark.parametrize("bad", [-1, 4, 1.5, True])
    def test_invalid(self, bad):
        with pytest.raises(ValidationError):
            check_index(bad, 3)


class TestAsFraction:
    def test_fraction_passthrough(self):
        assert as_fraction(Fraction(2, 3)) == Fraction(2, 3)

    def test_int(self):
        assert as_fraction(7) == Fraction(7)

    def test_clean_dyadic_float(self):
        assert as_fraction(0.375) == Fraction(3, 8)

    def test_messy_float_rejected(self):
        with pytest.raises(ValidationError):
            as_fraction(0.1)

    def test_non_number_rejected(self):
        with pytest.raises(ValidationError):
            as_fraction("1/2")


class TestMatrices:
    def test_as_fraction_matrix(self):
        m = as_fraction_matrix([[1, Fraction(1, 2)], [0, 1]])
        assert m.dtype == object
        assert m[0, 1] == Fraction(1, 2)

    def test_as_fraction_matrix_ragged(self):
        with pytest.raises(ValidationError):
            as_fraction_matrix([[1, 2], [3]])

    def test_as_fraction_matrix_empty(self):
        with pytest.raises(ValidationError):
            as_fraction_matrix([])

    def test_as_float_matrix(self):
        m = as_float_matrix([[Fraction(1, 2), 1], [0, 1]])
        assert m.dtype == float
        assert m[0, 0] == 0.5

    def test_is_exact_array(self):
        exact = as_fraction_matrix([[1, 2]])
        assert is_exact_array(exact)
        assert not is_exact_array(np.array([[0.5]]))


class TestStochasticChecks:
    def test_probability_vector_exact(self):
        check_probability_vector(
            np.array([Fraction(1, 2), Fraction(1, 2)], dtype=object)
        )

    def test_probability_vector_float(self):
        check_probability_vector(np.array([0.3, 0.7]))

    def test_bad_sum_exact(self):
        with pytest.raises(NotStochasticError):
            check_probability_vector(
                np.array([Fraction(1, 2), Fraction(1, 3)], dtype=object)
            )

    def test_negative_entry(self):
        with pytest.raises(NotStochasticError):
            check_probability_vector(np.array([1.2, -0.2]))

    def test_row_stochastic_reports_row(self):
        matrix = np.array([[0.5, 0.5], [0.6, 0.6]])
        with pytest.raises(NotStochasticError) as excinfo:
            check_row_stochastic(matrix)
        assert excinfo.value.row == 1

    def test_row_stochastic_rejects_1d(self):
        with pytest.raises(ValidationError):
            check_row_stochastic(np.array([1.0]))
